package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := New()
	var fired Time = -1
	e.After(5*Microsecond, func() { fired = e.Now() })
	e.Run()
	if fired != 5*Microsecond {
		t.Fatalf("event fired at %v, want 5us", fired)
	}
	if e.Now() != 5*Microsecond {
		t.Fatalf("clock = %v, want 5us", e.Now())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(30*Nanosecond, func() { order = append(order, 3) })
	e.At(10*Nanosecond, func() { order = append(order, 1) })
	e.At(20*Nanosecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: order=%v", order)
		}
	}
}

func TestScheduleInPastClampsToNow(t *testing.T) {
	e := New()
	var fired Time = -1
	e.At(100*Nanosecond, func() {
		e.At(50*Nanosecond, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 100*Nanosecond {
		t.Fatalf("past event fired at %v, want clamp to 100ns", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 100 {
			e.After(Nanosecond, step)
		}
	}
	e.After(0, step)
	e.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 99*Nanosecond {
		t.Fatalf("clock = %v, want 99ns", e.Now())
	}
}

func TestRunUntilLeavesLaterEventsPending(t *testing.T) {
	e := New()
	ran := 0
	e.At(10*Nanosecond, func() { ran++ })
	e.At(20*Nanosecond, func() { ran++ })
	e.At(30*Nanosecond, func() { ran++ })
	e.RunUntil(20 * Nanosecond)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if e.Now() != 20*Nanosecond {
		t.Fatalf("clock = %v, want 20ns", e.Now())
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("after Run, ran = %d, want 3", ran)
	}
}

func TestRunForRelativeWindow(t *testing.T) {
	e := New()
	e.At(5*Nanosecond, func() {})
	e.RunUntil(5 * Nanosecond)
	ran := false
	e.At(9*Nanosecond, func() { ran = true })
	e.RunFor(4 * Nanosecond)
	if !ran {
		t.Fatal("event within RunFor window did not run")
	}
	if e.Now() != 9*Nanosecond {
		t.Fatalf("clock = %v, want 9ns", e.Now())
	}
}

func TestProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 42; i++ {
		e.After(Time(i)*Nanosecond, func() {})
	}
	e.Run()
	if e.Processed() != 42 {
		t.Fatalf("Processed = %d, want 42", e.Processed())
	}
}

// Property: for any set of timestamps, events fire in sorted order.
func TestEventOrderProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		e := New()
		var fired []Time
		for _, s := range stamps {
			at := Time(s) * Nanosecond
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(stamps) {
			return false
		}
		want := make([]Time, len(stamps))
		for i, s := range stamps {
			want[i] = Time(s) * Nanosecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	if (2500 * Nanosecond).Microseconds() != 2.5 {
		t.Fatalf("2500ns = %v us, want 2.5", (2500 * Nanosecond).Microseconds())
	}
	if NS(28.6) != 28600*Picosecond {
		t.Fatalf("NS(28.6) = %d ps, want 28600", NS(28.6))
	}
	if Second.Seconds() != 1.0 {
		t.Fatalf("Second.Seconds() = %v", Second.Seconds())
	}
}

func TestServerFIFOSingleUnit(t *testing.T) {
	e := New()
	s := NewServer(e, 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		s.Submit(10*Nanosecond, func(end Time) { ends = append(ends, end) })
	}
	e.Run()
	want := []Time{10 * Nanosecond, 20 * Nanosecond, 30 * Nanosecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestServerParallelUnits(t *testing.T) {
	e := New()
	s := NewServer(e, 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		s.Submit(10*Nanosecond, func(end Time) { ends = append(ends, end) })
	}
	e.Run()
	// Two units: jobs finish at 10,10,20,20.
	want := []Time{10 * Nanosecond, 10 * Nanosecond, 20 * Nanosecond, 20 * Nanosecond}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestServerSaturationThroughput(t *testing.T) {
	// A single-unit server with 40ns service must deliver exactly 25 Mops.
	e := New()
	s := NewServer(e, 1)
	done := 0
	n := 100000
	for i := 0; i < n; i++ {
		s.Submit(40*Nanosecond, func(Time) { done++ })
	}
	e.Run()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	mops := float64(done) / e.Now().Seconds() / 1e6
	if mops < 24.99 || mops > 25.01 {
		t.Fatalf("throughput = %.3f Mops, want 25", mops)
	}
}

func TestServerUtilization(t *testing.T) {
	e := New()
	s := NewServer(e, 1)
	s.Submit(30*Nanosecond, nil)
	e.At(60*Nanosecond, func() {})
	e.Run()
	if u := s.Utilization(); u < 0.499 || u > 0.501 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestServerZeroAndNegativeService(t *testing.T) {
	e := New()
	s := NewServer(e, 1)
	end := s.Submit(-5*Nanosecond, nil)
	if end != 0 {
		t.Fatalf("negative service end = %v, want 0", end)
	}
	end = s.Submit(0, nil)
	if end != 0 {
		t.Fatalf("zero service end = %v, want 0", end)
	}
}

func TestServerNextFreeAndBacklog(t *testing.T) {
	e := New()
	s := NewServer(e, 1)
	s.Submit(100*Nanosecond, nil)
	s.Submit(50*Nanosecond, nil)
	if nf := s.NextFree(); nf != 150*Nanosecond {
		t.Fatalf("NextFree = %v, want 150ns", nf)
	}
	if b := s.Backlog(); b != 150*Nanosecond {
		t.Fatalf("Backlog = %v, want 150ns", b)
	}
	e.RunUntil(200 * Nanosecond)
	if b := s.Backlog(); b != 0 {
		t.Fatalf("post-run Backlog = %v, want 0", b)
	}
}

func TestNewServerPanicsOnZeroUnits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer(0) did not panic")
		}
	}()
	NewServer(New(), 0)
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(8)
	same := true
	a2 := NewRand(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandDurationBetween(t *testing.T) {
	r := NewRand(1)
	lo, hi := 60*Nanosecond, 120*Nanosecond
	for i := 0; i < 1000; i++ {
		d := r.DurationBetween(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("DurationBetween out of range: %v", d)
		}
	}
	if r.DurationBetween(hi, lo) != hi {
		t.Fatal("inverted range should return lo")
	}
}

// Property: a k-unit server never exceeds k-way concurrency and preserves
// total service time in its busy accounting.
func TestServerBusyAccountingProperty(t *testing.T) {
	f := func(raw []uint8, unitsRaw uint8) bool {
		units := int(unitsRaw%4) + 1
		e := New()
		s := NewServer(e, units)
		var total Time
		for _, v := range raw {
			svc := Time(v) * Nanosecond
			total += svc
			s.Submit(svc, nil)
		}
		e.Run()
		return s.BusyTime() == total && s.Jobs() == uint64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}
