package sim

// Rand is the single blessed gateway to math/rand: every deterministic
// package draws randomness through it (or through a *Rand threaded in
// from outside), so seeds flow from one place and the simtime analyzer
// can reject stray math/rand usage elsewhere in the model.
import "math/rand" //lint:allow simtime — sim.Rand is the one wrapper around math/rand; everything else goes through it

// Rand is a deterministic random source for model components. It wraps
// math/rand with an explicit seed so experiment runs are reproducible.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))} //lint:allow simtime — the blessed construction point for model randomness
}

// Uint64 returns a pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 { return r.r.Uint64() }

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Int63n returns a value in [0, n) as an int64.
func (r *Rand) Int63n(n int64) int64 { return r.r.Int63n(n) }

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// DurationBetween returns a uniformly distributed Time in [lo, hi].
func (r *Rand) DurationBetween(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(r.r.Int63n(int64(hi-lo)+1))
}
