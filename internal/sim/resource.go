package sim

// Server models a FIFO service resource with one or more identical units
// (e.g. a NIC processing unit pool, a PCIe PIO engine, a wire). Work is
// submitted with a service time; the server assigns it to the earliest
// available unit, preserving submission order.
type Server struct {
	eng    *Engine
	freeAt []Time
	busy   Time // accumulated busy time across units, for utilization
	jobs   uint64
}

// NewServer returns a server with the given number of units on eng.
// units must be >= 1.
func NewServer(eng *Engine, units int) *Server {
	if units < 1 {
		panic("sim: NewServer requires units >= 1")
	}
	return &Server{eng: eng, freeAt: make([]Time, units)}
}

// Units returns the number of service units.
func (s *Server) Units() int { return len(s.freeAt) }

// Jobs returns the number of jobs submitted so far.
func (s *Server) Jobs() uint64 { return s.jobs }

// BusyTime returns the total busy time accumulated across all units.
func (s *Server) BusyTime() Time { return s.busy }

// Utilization reports mean per-unit utilization over [0, now].
func (s *Server) Utilization() float64 {
	now := s.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(s.busy) / float64(now) / float64(len(s.freeAt))
}

// Submit enqueues a job with the given service time. done (if non-nil)
// runs when service completes and receives the completion time.
// Submit returns the scheduled completion time.
func (s *Server) Submit(service Time, done func(end Time)) Time {
	if service < 0 {
		service = 0
	}
	// Pick the unit that frees earliest (FIFO across the pool).
	best := 0
	for i := 1; i < len(s.freeAt); i++ {
		if s.freeAt[i] < s.freeAt[best] {
			best = i
		}
	}
	start := s.freeAt[best]
	if now := s.eng.Now(); start < now {
		start = now
	}
	end := start + service
	s.freeAt[best] = end
	s.busy += service
	s.jobs++
	if done != nil {
		s.eng.At(end, func() { done(end) })
	}
	return end
}

// NextFree returns the earliest time at which any unit is available.
func (s *Server) NextFree() Time {
	best := s.freeAt[0]
	for _, t := range s.freeAt[1:] {
		if t < best {
			best = t
		}
	}
	if now := s.eng.Now(); best < now {
		best = now
	}
	return best
}

// Backlog returns how far the most-loaded unit's schedule extends past now.
func (s *Server) Backlog() Time {
	worst := s.freeAt[0]
	for _, t := range s.freeAt[1:] {
		if t > worst {
			worst = t
		}
	}
	if b := worst - s.eng.Now(); b > 0 {
		return b
	}
	return 0
}
