// Package stats provides latency recording (mean / percentiles, as in
// Figure 11's error bars) and throughput accounting for experiments.
//
// It is the experiment-side aggregator: a recorder the drivers create,
// fill and read per run. The always-on, name-addressed counterpart —
// counters, gauges and histograms shared by every layer of the stack,
// plus request-lifecycle tracing — is internal/telemetry (see
// docs/OBSERVABILITY.md).
package stats

import (
	"sort"

	"herdkv/internal/sim"
)

// LatencyRecorder accumulates latency samples. Beyond its capacity it
// switches to reservoir sampling, so percentile estimates stay unbiased
// for arbitrarily long runs at bounded memory.
type LatencyRecorder struct {
	samples []sim.Time
	cap     int
	count   uint64
	sum     sim.Time
	min     sim.Time
	max     sim.Time
	rnd     *sim.Rand
	sorted  bool
}

// NewLatencyRecorder returns a recorder keeping at most capacity samples
// (default 65536 if capacity <= 0).
func NewLatencyRecorder(capacity int) *LatencyRecorder {
	if capacity <= 0 {
		capacity = 65536
	}
	return &LatencyRecorder{
		cap: capacity,
		rnd: sim.NewRand(1),
		min: 1<<63 - 1,
	}
}

// Record adds one sample.
func (r *LatencyRecorder) Record(t sim.Time) {
	r.count++
	r.sum += t
	if t < r.min {
		r.min = t
	}
	if t > r.max {
		r.max = t
	}
	r.sorted = false
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, t)
		return
	}
	// Reservoir: replace a random existing sample with probability
	// cap/count.
	if j := r.rnd.Int63n(int64(r.count)); int(j) < r.cap {
		r.samples[j] = t
	}
}

// Count returns the number of recorded samples.
func (r *LatencyRecorder) Count() uint64 { return r.count }

// Mean returns the exact mean over all recorded samples.
func (r *LatencyRecorder) Mean() sim.Time {
	if r.count == 0 {
		return 0
	}
	return r.sum / sim.Time(r.count)
}

// Min and Max return exact extremes.
func (r *LatencyRecorder) Min() sim.Time {
	if r.count == 0 {
		return 0
	}
	return r.min
}
func (r *LatencyRecorder) Max() sim.Time { return r.max }

// Percentile returns the p-th percentile (0 < p <= 100) from the sample
// set.
func (r *LatencyRecorder) Percentile(p float64) sim.Time {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	idx := int(p/100*float64(len(r.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.samples) {
		idx = len(r.samples) - 1
	}
	return r.samples[idx]
}

// Throughput converts an operation count over a virtual duration to
// millions of operations per second (the paper's Mops).
func Throughput(ops uint64, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds() / 1e6
}

// Counter is a set of named monotonic counters for experiment output.
type Counter struct {
	names  []string
	values map[string]uint64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter {
	return &Counter{values: make(map[string]uint64)}
}

// Add increments name by delta, registering it on first use.
func (c *Counter) Add(name string, delta uint64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += delta
}

// Get returns name's value.
func (c *Counter) Get(name string) uint64 { return c.values[name] }

// Names returns counter names in first-use order.
func (c *Counter) Names() []string { return append([]string(nil), c.names...) }
