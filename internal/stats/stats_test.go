package stats

import (
	"testing"

	"herdkv/internal/sim"
)

func TestMeanMinMax(t *testing.T) {
	r := NewLatencyRecorder(0)
	for _, v := range []sim.Time{10, 20, 30} {
		r.Record(v * sim.Nanosecond)
	}
	if r.Mean() != 20*sim.Nanosecond {
		t.Fatalf("mean = %v", r.Mean())
	}
	if r.Min() != 10*sim.Nanosecond || r.Max() != 30*sim.Nanosecond {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	if r.Count() != 3 {
		t.Fatalf("count = %d", r.Count())
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewLatencyRecorder(10)
	if r.Mean() != 0 || r.Min() != 0 || r.Percentile(50) != 0 {
		t.Fatal("empty recorder should return zeros")
	}
}

func TestPercentiles(t *testing.T) {
	r := NewLatencyRecorder(0)
	for i := 1; i <= 100; i++ {
		r.Record(sim.Time(i) * sim.Microsecond)
	}
	if p := r.Percentile(50); p != 50*sim.Microsecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := r.Percentile(95); p != 95*sim.Microsecond {
		t.Fatalf("p95 = %v", p)
	}
	if p := r.Percentile(5); p != 5*sim.Microsecond {
		t.Fatalf("p5 = %v", p)
	}
	if p := r.Percentile(100); p != 100*sim.Microsecond {
		t.Fatalf("p100 = %v", p)
	}
}

func TestReservoirStaysBounded(t *testing.T) {
	r := NewLatencyRecorder(100)
	for i := 0; i < 100000; i++ {
		r.Record(sim.Time(i%1000) * sim.Nanosecond)
	}
	if len(r.samples) != 100 {
		t.Fatalf("samples = %d, want 100", len(r.samples))
	}
	if r.Count() != 100000 {
		t.Fatalf("count = %d", r.Count())
	}
	// Percentiles should still be roughly right: p50 ~ 500ns.
	p50 := r.Percentile(50).Nanoseconds()
	if p50 < 300 || p50 > 700 {
		t.Fatalf("reservoir p50 = %v ns, want ~500", p50)
	}
}

func TestRecordAfterPercentileKeepsSorting(t *testing.T) {
	r := NewLatencyRecorder(0)
	r.Record(30 * sim.Nanosecond)
	r.Record(10 * sim.Nanosecond)
	_ = r.Percentile(50)
	r.Record(20 * sim.Nanosecond)
	if p := r.Percentile(100); p != 30*sim.Nanosecond {
		t.Fatalf("p100 after re-record = %v", p)
	}
	if p := r.Percentile(1); p != 10*sim.Nanosecond {
		t.Fatalf("p1 after re-record = %v", p)
	}
}

func TestThroughput(t *testing.T) {
	// 26M ops in 1 simulated second = 26 Mops.
	if got := Throughput(26_000_000, sim.Second); got != 26 {
		t.Fatalf("Throughput = %v", got)
	}
	if Throughput(100, 0) != 0 {
		t.Fatal("zero elapsed should give 0")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("gets", 2)
	c.Add("puts", 1)
	c.Add("gets", 3)
	if c.Get("gets") != 5 || c.Get("puts") != 1 {
		t.Fatalf("values = %d/%d", c.Get("gets"), c.Get("puts"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "gets" || names[1] != "puts" {
		t.Fatalf("names = %v", names)
	}
	if c.Get("absent") != 0 {
		t.Fatal("absent counter should be 0")
	}
}
