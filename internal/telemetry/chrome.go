package telemetry

import (
	"encoding/json"
	"io"
)

// Chrome trace_event export: the Tracer's spans serialize to the JSON
// object format understood by chrome://tracing and Perfetto
// (https://ui.perfetto.dev). Each trace becomes a named "thread" (tid =
// trace id), each span a complete event ("ph":"X"); timestamps and
// durations are microseconds of virtual time, carried as floats so the
// simulator's picosecond resolution survives.

type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes every recorded span as Chrome trace_event
// JSON. Open the file at chrome://tracing or ui.perfetto.dev: each
// traced request appears as its own track, its stages laid end to end
// across the request's latency.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	us := func(ps int64) float64 { return float64(ps) / 1e6 }
	named := make(map[uint64]bool)
	for _, s := range t.Spans() {
		if !named[s.TraceID] {
			named[s.TraceID] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: s.TraceID,
				Args: map[string]string{"name": s.Trace},
			})
		}
		dur := us(int64(s.End - s.Start))
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name, Cat: s.Trace, Ph: "X",
			TS: us(int64(s.Start)), Dur: &dur,
			PID: 1, TID: s.TraceID,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
