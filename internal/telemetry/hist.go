package telemetry

import (
	"math/bits"

	"herdkv/internal/sim"
)

// Histogram bucket geometry: values below subBuckets are recorded
// exactly; above that, each power of two is split into subBuckets
// log-linear sub-buckets (HDR-histogram style), bounding the relative
// quantization error of any reported quantile to 1/subBuckets = 6.25%
// at fixed memory — unlike reservoir sampling, merges and long runs lose
// nothing.
const (
	subBuckets = 16
	subShift   = 4 // log2(subBuckets)
	// nBuckets covers the full non-negative int64 range: exponents
	// subShift..62 each contribute subBuckets buckets after the exact
	// region.
	nBuckets = subBuckets + (63-subShift)*subBuckets
)

// Histogram is a fixed-memory log-linear histogram of non-negative
// int64 values (negative samples clamp to zero). The zero value is
// ready to use; a nil *Histogram is a valid no-op recorder.
type Histogram struct {
	counts   [nBuckets]uint64
	count    uint64
	sum      int64
	min, max int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIdx maps a value to its bucket.
func bucketIdx(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // 2^exp <= v < 2^(exp+1)
	sub := int(v>>(uint(exp)-subShift)) & (subBuckets - 1)
	return subBuckets + (exp-subShift)*subBuckets + sub
}

// bucketLow returns the smallest value that maps to bucket idx — the
// representative reported for quantiles falling in that bucket.
func bucketLow(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	idx -= subBuckets
	exp := idx/subBuckets + subShift
	sub := idx % subBuckets
	return int64(1)<<uint(exp) | int64(sub)<<uint(exp-subShift)
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.counts[bucketIdx(v)]++
}

// RecordTime adds one virtual-duration sample.
func (h *Histogram) RecordTime(t sim.Time) { h.Record(int64(t)) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the exact mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return exact extremes (0 for an empty histogram).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Percentile returns the p-th percentile. p <= 0 returns the exact
// minimum and p >= 100 the exact maximum; interior quantiles return the
// lower bound of the containing bucket, clamped into [Min, Max]. An
// empty histogram returns 0.
func (h *Histogram) Percentile(p float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds o's samples into h. Merging histograms from different
// sources is exact for Count/Sum/Min/Max and bucket-exact for
// percentiles (both sides share one fixed bucket geometry).
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
}
