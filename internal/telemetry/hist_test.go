package telemetry

import (
	"testing"

	"herdkv/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for _, p := range []float64{0, 50, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("empty p%.0f = %d, want 0", p, got)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(12345)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		got := h.Percentile(p)
		// A single sample pins every quantile inside [min, max] = [v, v].
		if got != 12345 {
			t.Fatalf("p%.0f = %d, want 12345", p, got)
		}
	}
	if h.Min() != 12345 || h.Max() != 12345 || h.Mean() != 12345 {
		t.Fatal("single-sample stats wrong")
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below subBuckets are recorded exactly.
	h := NewHistogram()
	for v := int64(0); v < subBuckets; v++ {
		h.Record(v)
	}
	if h.Percentile(50) != 7 {
		t.Fatalf("p50 = %d, want 7", h.Percentile(50))
	}
	if h.Percentile(100) != 15 || h.Percentile(0) != 0 {
		t.Fatal("extremes wrong")
	}
}

func TestHistogramQuantizationBound(t *testing.T) {
	// Interior quantiles must be within 1/subBuckets relative error.
	h := NewHistogram()
	const v = 1_000_003
	h.Record(v / 2) // a distinct minimum, so clamping can't mask quantization
	for i := 0; i < 100; i++ {
		h.Record(v)
	}
	got := h.Percentile(75)
	if got > v || float64(v-got)/float64(v) > 1.0/subBuckets {
		t.Fatalf("p75 = %d, want within %.2f%% below %d", got, 100.0/subBuckets, v)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample should clamp to 0: min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHistogramPercentileClamping(t *testing.T) {
	// The p100 bucket's lower bound can undershoot max and interior
	// quantiles' bucket bounds can undershoot min; both must clamp.
	h := NewHistogram()
	h.Record(1000)
	h.Record(1001)
	if got := h.Percentile(100); got != 1001 {
		t.Fatalf("p100 = %d, want exact max 1001", got)
	}
	if got := h.Percentile(1); got < 1000 {
		t.Fatalf("p1 = %d, below min", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 50; i++ {
		a.Record(100)
		b.Record(10_000)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", a.Count())
	}
	if a.Min() != 100 || a.Max() != 10_000 {
		t.Fatalf("merged extremes [%d, %d], want [100, 10000]", a.Min(), a.Max())
	}
	if want := int64(50*100 + 50*10_000); a.Sum() != want {
		t.Fatalf("merged sum = %d, want %d", a.Sum(), want)
	}
	// Median sits at the boundary between the two populations: the 50th
	// of 100 samples is still a 100-valued one.
	if got := a.Percentile(50); got != 100 {
		t.Fatalf("merged p50 = %d, want 100", got)
	}
	if got := a.Percentile(99); got < 9_000 {
		t.Fatalf("merged p99 = %d, want ~10000", got)
	}

	// Merging an empty histogram (or into a nil one) is a no-op.
	before := a.Count()
	a.Merge(NewHistogram())
	a.Merge(nil)
	if a.Count() != before {
		t.Fatal("empty merge changed count")
	}
	var nilH *Histogram
	nilH.Merge(a) // must not panic
	nilH.Record(1)
	nilH.RecordTime(sim.Microsecond)
	if nilH.Count() != 0 || nilH.Percentile(50) != 0 {
		t.Fatal("nil histogram should be a no-op")
	}
}

func TestHistogramMergeEmptyReceiver(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	b.Record(7)
	a.Merge(b)
	if a.Min() != 7 || a.Max() != 7 || a.Count() != 1 {
		t.Fatalf("merge into empty: min=%d max=%d count=%d", a.Min(), a.Max(), a.Count())
	}
}

func TestBucketGeometry(t *testing.T) {
	// bucketLow must be the smallest value mapping to its bucket, and
	// indexes must stay in range across the whole int64 span.
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 1 << 20, 1<<62 + 12345, 1<<63 - 1} {
		idx := bucketIdx(v)
		if idx < 0 || idx >= nBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, idx)
		}
		low := bucketLow(idx)
		if low > v {
			t.Fatalf("bucketLow(%d) = %d exceeds value %d", idx, low, v)
		}
		if bucketIdx(low) != idx {
			t.Fatalf("bucketLow(%d) = %d maps to bucket %d", idx, low, bucketIdx(low))
		}
	}
}
