package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// Counter is a named monotonic counter. A nil *Counter is a valid no-op,
// so instrumented code can hold possibly-nil handles and increment them
// unconditionally.
type Counter struct{ v uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a named level with a high-water mark: Set records the current
// value and remembers the maximum ever seen. CQ depths and queue
// backlogs use the mark; the current value is a free extra. A nil *Gauge
// is a valid no-op.
type Gauge struct{ v, max int64 }

// Set records the gauge's current value, updating the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the gauge by d (negative deltas allowed).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.Set(g.v + d)
}

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the highest value ever Set.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Registry is an ordered collection of named metrics. Get-or-create
// accessors make wiring cheap: two layers asking for the same name share
// one metric, so per-verb counters aggregate across hosts naturally.
//
// Like the rest of the simulation the registry is single-threaded; it
// needs no locks because the whole model runs on one goroutine.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Registry histograms record virtual durations in picoseconds
// (sim.Time); WriteText reports them in microseconds.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// WriteText dumps every metric, one per line, sorted by name within each
// kind (counters, then gauges, then histograms):
//
//	counter verbs.WRITE.posted 123456
//	gauge   verbs.cq.depth.hwm cur=0 max=17
//	hist    herd.get.latency_us count=200 min=1.52 mean=1.87 p50=1.86 p95=2.01 p99=2.10 max=2.20
//
// Histogram statistics are printed in microseconds (values are recorded
// as picosecond sim.Time durations).
func (r *Registry) WriteText(w io.Writer) error {
	names := func(n int) []string { return make([]string, 0, n) }

	cs := names(len(r.counters))
	for name := range r.counters {
		cs = append(cs, name)
	}
	sort.Strings(cs)
	for _, name := range cs {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, r.counters[name].Value()); err != nil {
			return err
		}
	}

	gs := names(len(r.gauges))
	for name := range r.gauges {
		gs = append(gs, name)
	}
	sort.Strings(gs)
	for _, name := range gs {
		g := r.gauges[name]
		if _, err := fmt.Fprintf(w, "gauge   %s cur=%d max=%d\n", name, g.Value(), g.Max()); err != nil {
			return err
		}
	}

	hs := names(len(r.hists))
	for name := range r.hists {
		hs = append(hs, name)
	}
	sort.Strings(hs)
	us := func(v int64) float64 { return float64(v) / 1e6 }
	for _, name := range hs {
		h := r.hists[name]
		if _, err := fmt.Fprintf(w,
			"hist    %s_us count=%d min=%.2f mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
			name, h.Count(), us(h.Min()), us(int64(h.Mean())),
			us(h.Percentile(50)), us(h.Percentile(95)), us(h.Percentile(99)), us(h.Max())); err != nil {
			return err
		}
	}
	return nil
}
