// Package telemetry is the observability substrate for the simulated
// RDMA stack: a metrics registry (monotonic counters, high-water gauges,
// HDR-style latency histograms) and a request-lifecycle tracer keyed to
// virtual sim.Time, with a Chrome trace_event exporter so a simulated
// run can be opened in chrome://tracing or Perfetto.
//
// The package is zero-dependency (it imports only internal/sim) and is
// threaded through pcie, nic, verbs, and core behind a nil-safe Sink:
// every handle type (*Counter, *Gauge, *Histogram, *Trace) is a valid
// no-op when nil, so un-instrumented runs pay a single nil check per
// event and allocate nothing. Instrumentation never schedules simulation
// events, so enabling telemetry cannot perturb a deterministic run.
//
// See docs/OBSERVABILITY.md for the metric name catalog and the trace
// span reference.
package telemetry

import "herdkv/internal/sim"

// Sink bundles the telemetry destinations one simulation writes to. A
// nil *Sink (or a nil field) disables the corresponding subsystem; all
// methods are safe on a nil receiver.
type Sink struct {
	// Registry receives counters, gauges and histograms. Nil disables
	// metrics.
	Registry *Registry
	// Tracer receives request-lifecycle spans. Nil disables tracing.
	Tracer *Tracer
	// PerQP additionally maintains per-queue-pair posted/completed
	// counters (verbs.qp.n<node>.q<qpn>.<verb>.*). Off by default: a
	// large fleet creates thousands of QPs and the aggregate per-verb
	// counters are usually what experiments want.
	PerQP bool
}

// New returns a Sink with a metrics registry and no tracer.
func New() *Sink { return &Sink{Registry: NewRegistry()} }

// Counter returns the named counter, or nil when metrics are disabled.
func (s *Sink) Counter(name string) *Counter {
	if s == nil || s.Registry == nil {
		return nil
	}
	return s.Registry.Counter(name)
}

// Gauge returns the named gauge, or nil when metrics are disabled.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil || s.Registry == nil {
		return nil
	}
	return s.Registry.Gauge(name)
}

// Histogram returns the named histogram, or nil when metrics are
// disabled.
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil || s.Registry == nil {
		return nil
	}
	return s.Registry.Histogram(name)
}

// Tracing reports whether trace spans should be produced.
func (s *Sink) Tracing() bool { return s != nil && s.Tracer != nil }

// QPScoped reports whether per-QP counters should be maintained.
func (s *Sink) QPScoped() bool { return s != nil && s.PerQP }

// StartTrace begins a request-lifecycle trace named name at virtual
// time at. It returns nil (a valid no-op trace) when tracing is
// disabled.
func (s *Sink) StartTrace(name string, at sim.Time) *Trace {
	if s == nil || s.Tracer == nil {
		return nil
	}
	return s.Tracer.Start(name, at)
}
