package telemetry

import "herdkv/internal/sim"

// Span is one contiguous stage of a traced request: [Start, End) in
// virtual time. Spans of one trace are contiguous by construction (each
// Mark closes the stage that began at the previous mark), so their
// durations sum to the trace's end-to-end latency exactly.
type Span struct {
	TraceID uint64   // groups the spans of one request
	Trace   string   // the request name, e.g. "GET"
	Name    string   // the stage name, e.g. "req.pio"
	Start   sim.Time // when the stage began (the previous mark)
	End     sim.Time // when the stage completed (this mark)
}

// Duration returns the span's length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Tracer records request-lifecycle spans. Like the Registry it is
// single-threaded and keyed entirely to virtual time: recording a span
// never schedules a simulation event, so tracing cannot perturb a run.
type Tracer struct {
	spans  []Span
	nextID uint64
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Start begins a new trace named name (e.g. "GET") whose first stage
// opens at virtual time at. A nil Tracer returns a nil (no-op) Trace.
func (t *Tracer) Start(name string, at sim.Time) *Trace {
	if t == nil {
		return nil
	}
	t.nextID++
	return &Trace{tr: t, id: t.nextID, name: name, start: at, last: at}
}

// Spans returns every recorded span in recording order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// SpanCount returns how many spans have been recorded; together with
// SpansSince it lets an experiment slice out only its own activity from
// a shared tracer.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// SpansSince returns the spans recorded at or after index n.
func (t *Tracer) SpansSince(n int) []Span {
	if t == nil || n >= len(t.spans) {
		return nil
	}
	if n < 0 {
		n = 0
	}
	return t.spans[n:]
}

// Trace is one request's lifecycle recorder. Layers along the request
// path call Mark at each stage boundary; the stage's span covers the
// time since the previous mark, so a trace is a gap-free partition of
// the request's latency. A nil *Trace is a valid no-op, which is how
// un-traced operations skip all recording.
type Trace struct {
	tr     *Tracer
	id     uint64
	name   string
	prefix string
	start  sim.Time
	last   sim.Time
}

// ID returns the trace's unique id (its Perfetto thread id).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// StartAt returns when the trace began.
func (t *Trace) StartAt() sim.Time {
	if t == nil {
		return 0
	}
	return t.start
}

// SetPrefix prepends p to subsequent stage names. The HERD layers use it
// to distinguish the two network legs ("req." vs "resp.") while the
// verbs layer marks generic stage names ("pio", "wire", ...).
func (t *Trace) SetPrefix(p string) {
	if t == nil {
		return
	}
	t.prefix = p
}

// Mark closes the current stage at virtual time at, recording a span
// named prefix+stage that began at the previous mark (or the trace
// start). Marks must be issued in virtual-time order along the request
// path; an out-of-order mark records a zero-length span rather than a
// negative one.
func (t *Trace) Mark(stage string, at sim.Time) {
	if t == nil {
		return
	}
	start := t.last
	if at < start {
		start = at
	}
	t.tr.spans = append(t.tr.spans, Span{
		TraceID: t.id, Trace: t.name, Name: t.prefix + stage, Start: start, End: at,
	})
	t.last = at
}

// End returns the time of the last mark (the trace's end once the
// request completed).
func (t *Trace) End() sim.Time {
	if t == nil {
		return 0
	}
	return t.last
}
