package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"herdkv/internal/sim"
)

func TestTraceContiguousSpans(t *testing.T) {
	tr := NewTracer()
	g := tr.Start("GET", 100)
	g.SetPrefix("req.")
	g.Mark("pio", 250)
	g.Mark("wire", 900)
	g.SetPrefix("")
	g.Mark("cpu", 1000)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	wantNames := []string{"req.pio", "req.wire", "cpu"}
	var sum sim.Time
	for i, s := range spans {
		if s.Name != wantNames[i] {
			t.Fatalf("span %d named %q, want %q", i, s.Name, wantNames[i])
		}
		if s.TraceID != g.ID() || s.Trace != "GET" {
			t.Fatalf("span %d misattributed: %+v", i, s)
		}
		sum += s.Duration()
	}
	// Contiguity: spans partition [start, end] with no gaps.
	if spans[0].Start != 100 || spans[2].End != 1000 {
		t.Fatalf("trace bounds [%d, %d], want [100, 1000]", spans[0].Start, spans[2].End)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start != spans[i-1].End {
			t.Fatalf("gap between span %d and %d", i-1, i)
		}
	}
	if sum != 900 {
		t.Fatalf("durations sum to %d, want 900", sum)
	}
}

func TestTraceOutOfOrderMarkClamps(t *testing.T) {
	tr := NewTracer()
	g := tr.Start("X", 100)
	g.Mark("a", 200)
	g.Mark("b", 150) // out of order: must record a zero-length span, not negative
	s := tr.Spans()[1]
	if s.Duration() != 0 || s.End != 150 {
		t.Fatalf("out-of-order span = %+v, want zero-length at 150", s)
	}
}

func TestTracerSpansSince(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("A", 0)
	a.Mark("x", 10)
	n := tr.SpanCount()
	b := tr.Start("B", 20)
	b.Mark("y", 30)
	since := tr.SpansSince(n)
	if len(since) != 1 || since[0].Trace != "B" {
		t.Fatalf("SpansSince(%d) = %+v, want just B's span", n, since)
	}
	if got := tr.SpansSince(99); got != nil {
		t.Fatalf("SpansSince past end = %+v, want nil", got)
	}
}

func TestNilSafety(t *testing.T) {
	// Every handle must be a no-op when nil: this is the "un-instrumented
	// runs pay ~nothing" contract.
	var s *Sink
	if s.Counter("x") != nil || s.Gauge("x") != nil || s.Histogram("x") != nil {
		t.Fatal("nil sink must hand out nil metric handles")
	}
	if s.Tracing() || s.QPScoped() {
		t.Fatal("nil sink must report disabled")
	}
	tr := s.StartTrace("op", 0)
	if tr != nil {
		t.Fatal("nil sink must hand out nil traces")
	}
	tr.SetPrefix("req.")
	tr.Mark("pio", 10)
	if tr.ID() != 0 || tr.End() != 0 || tr.StartAt() != 0 {
		t.Fatal("nil trace accessors must return zero")
	}

	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must stay zero")
	}
	var g *Gauge
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge must stay zero")
	}

	var tcr *Tracer
	if tcr.Start("x", 0) != nil || tcr.Spans() != nil || tcr.SpanCount() != 0 {
		t.Fatal("nil tracer must be inert")
	}

	var reg *Registry
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}

	// Sink with only a registry: traces off, metrics on.
	ms := New()
	if ms.Tracing() {
		t.Fatal("registry-only sink should not trace")
	}
	ms.Counter("a").Inc()
	if ms.Counter("a").Value() != 1 {
		t.Fatal("counter lost its increment")
	}
}

func TestRegistrySharedHandles(t *testing.T) {
	r := NewRegistry()
	if r.Counter("n") != r.Counter("n") {
		t.Fatal("same name must return the same counter")
	}
	r.Counter("n").Add(2)
	r.Counter("n").Add(3)
	if r.Counter("n").Value() != 5 {
		t.Fatal("shared counter must aggregate")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Set(4)
	if g.Value() != 4 || g.Max() != 10 {
		t.Fatalf("gauge cur=%d max=%d, want 4/10", g.Value(), g.Max())
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Add(1)
	r.Gauge("g").Set(3)
	r.Histogram("lat").RecordTime(2 * sim.Microsecond)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	wantLines := []string{
		"counter a.one 1",
		"counter b.two 2",
		"gauge   g cur=3 max=3",
		"hist    lat_us count=1 min=2.00 mean=2.00 p50=2.00 p95=2.00 p99=2.00 max=2.00",
	}
	for _, w := range wantLines {
		if !strings.Contains(got, w) {
			t.Fatalf("dump missing %q:\n%s", w, got)
		}
	}
	// Counters must be sorted.
	if strings.Index(got, "a.one") > strings.Index(got, "b.two") {
		t.Fatal("counters not sorted")
	}
}

// TestChromeTraceGolden pins the exporter's exact output, and checks it
// is valid JSON of the trace_event object form.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer()
	g := tr.Start("GET", 1_000_000) // 1 us
	g.Mark("pio", 1_500_000)        // 0.5 us stage
	g.Mark("wire", 3_000_000)       // 1.5 us stage

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"GET"}},` +
		`{"name":"pio","cat":"GET","ph":"X","ts":1,"dur":0.5,"pid":1,"tid":1},` +
		`{"name":"wire","cat":"GET","ph":"X","ts":1.5,"dur":1.5,"pid":1,"tid":1}` +
		`],"displayTimeUnit":"ns"}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("chrome trace drifted:\ngot  %s\nwant %s", got, want)
	}

	// And it must round-trip as the trace_event JSON object form.
	var parsed struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(parsed.TraceEvents))
	}
	for _, ev := range parsed.TraceEvents[1:] {
		for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
	}

	// An empty tracer still produces a valid document.
	buf.Reset()
	if err := NewTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("empty trace malformed: %s", buf.String())
	}
}
