package verbs

import (
	"encoding/binary"

	"herdkv/internal/sim"
	"herdkv/internal/wire"
)

// RDMA atomics: 8-byte compare-and-swap and fetch-and-add on remote
// memory, RC (and DC) only. Atomics are one-sided like READs but force
// a read-modify-write at the responder NIC, which serializes them on an
// internal unit — the reason real RNICs sustain only a few Mops of
// atomics and why HERD-style designs avoid them. The model charges
// RxAtomic per operation on a dedicated serializing resource.

// AtomicKind selects the atomic operation.
type AtomicKind int

// Atomic operations.
const (
	CompareSwap AtomicKind = iota
	FetchAdd
)

// AtomicWR describes an atomic work request: an 8-byte operation on
// Remote[RemoteOff:+8], with the ORIGINAL value written to
// Local[LocalOff:+8] on completion (always signaled — the fetched value
// is the point).
type AtomicWR struct {
	WRID      uint64
	Kind      AtomicKind
	Remote    *MR
	RemoteOff int
	Local     *MR
	LocalOff  int

	// CompareSwap: if Remote == Compare then Remote = Swap.
	Compare uint64
	Swap    uint64
	// FetchAdd: Remote += Add.
	Add uint64

	// Dest is required on DC.
	Dest *QP
}

// PostAtomic posts an atomic operation. Supported on RC and DC
// transports only (like READ, the responder must acknowledge).
func (qp *QP) PostAtomic(wr AtomicWR) error {
	if qp.transport != wire.RC && qp.transport != wire.DC {
		return ErrVerbNotSupported
	}
	var dst *QP
	if qp.transport == wire.DC {
		if wr.Dest == nil {
			return ErrNoDestination
		}
		dst = wr.Dest
	} else {
		if qp.remote == nil {
			return ErrNotConnected
		}
		dst = qp.remote
	}
	if wr.Remote == nil || wr.RemoteOff < 0 || wr.RemoteOff+8 > wr.Remote.Len() {
		return ErrBounds
	}
	if wr.Local == nil || wr.LocalOff < 0 || wr.LocalOff+8 > wr.Local.Len() {
		return ErrBounds
	}

	n := qp.host.nic
	p := n.Params()
	// Atomics are always signaled (the fetched value is the point).
	qp.countPost(ATOMIC, 0, false, true)
	// Request: doorbell-only PIO, then the usual requester processing.
	n.Bus().PIOWrite(n.WQEBytes(qp.transport, 0), func(sim.Time) {
		puExtra, latExtra := n.TouchSendCtx(qp.globalKey())
		n.PU(p.TxReadReq+p.RCReqExtra+puExtra, func(sim.Time) {
			qp.orderedAfter(&qp.txGate, latExtra, func() {
				// Atomic request carries a 28 B ATOMICETH.
				n.Net().SendWire(n.Node(), dst.host.Node(),
					n.Net().Params().Header(qp.transport)+28, func(sim.Time) {
						dst.deliverAtomic(qp, wr)
					})
			})
		})
	})
	return nil
}

// deliverAtomic executes the read-modify-write at the responder NIC.
// Atomics serialize on the NIC's atomic unit (modeled inside the PU with
// a hefty per-op cost) and require a non-posted DMA round trip.
func (qp *QP) deliverAtomic(src *QP, wr AtomicWR) {
	n := qp.host.nic
	p := n.Params()
	puExtra, latExtra := n.TouchRecvCtx(qp.recvCtxKey())
	n.PU(p.RxAtomic+puExtra, func(sim.Time) {
		fin := func() {
			n.Bus().DMARead(8, func(sim.Time) {
				// Read-modify-write, atomic within this event.
				buf := wr.Remote.buf[wr.RemoteOff : wr.RemoteOff+8]
				old := binary.LittleEndian.Uint64(buf)
				switch wr.Kind {
				case CompareSwap:
					if old == wr.Compare {
						binary.LittleEndian.PutUint64(buf, wr.Swap)
					}
				case FetchAdd:
					binary.LittleEndian.PutUint64(buf, old+wr.Add)
				}
				n.Bus().DMAWrite(8, func(sim.Time) {
					// Response carries the original value.
					n.Net().SendWire(n.Node(), src.host.Node(),
						n.Net().Params().Header(qp.transport)+8, func(sim.Time) {
							src.deliverAtomicResponse(wr, old)
						})
				})
			})
		}
		qp.orderedAfter(&qp.rxGate, latExtra, fin)
	})
}

// deliverAtomicResponse lands the fetched value and completes.
func (qp *QP) deliverAtomicResponse(wr AtomicWR, old uint64) {
	n := qp.host.nic
	p := n.Params()
	n.PU(p.RxReadResp, func(sim.Time) {
		n.Bus().DMAWrite(8+p.CQEBytes, func(at sim.Time) {
			binary.LittleEndian.PutUint64(wr.Local.buf[wr.LocalOff:wr.LocalOff+8], old)
			qp.host.telCompleted[ATOMIC].Inc()
			qp.sendCQ.push(Completion{
				QPN: qp.qpn, WRID: wr.WRID, Verb: ATOMIC, Bytes: 8, At: at,
			})
		})
	})
}
