package verbs

import (
	"encoding/binary"
	"errors"
	"testing"

	"herdkv/internal/wire"
)

func atomicPair(tb *testbed) (*QP, *QP, *MR, *MR) {
	qa, qb := connectedPair(tb, wire.RC)
	remote := tb.b.RegisterMR(64)
	local := tb.a.RegisterMR(64)
	return qa, qb, remote, local
}

func TestFetchAdd(t *testing.T) {
	tb := newTestbed()
	qa, _, remote, local := atomicPair(tb)
	binary.LittleEndian.PutUint64(remote.Bytes(), 100)
	fetched := uint64(0)
	qa.SendCQ().SetHandler(func(c Completion) {
		if c.Verb != ATOMIC {
			t.Errorf("completion verb = %v", c.Verb)
		}
		fetched = binary.LittleEndian.Uint64(local.Bytes())
	})
	if err := qa.PostAtomic(AtomicWR{Kind: FetchAdd, Remote: remote, Local: local, Add: 7}); err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if fetched != 100 {
		t.Fatalf("fetched = %d, want the original 100", fetched)
	}
	if got := binary.LittleEndian.Uint64(remote.Bytes()); got != 107 {
		t.Fatalf("remote = %d, want 107", got)
	}
}

func TestCompareSwap(t *testing.T) {
	tb := newTestbed()
	qa, _, remote, local := atomicPair(tb)
	binary.LittleEndian.PutUint64(remote.Bytes(), 42)

	// Matching compare swaps.
	qa.PostAtomic(AtomicWR{Kind: CompareSwap, Remote: remote, Local: local, Compare: 42, Swap: 99})
	tb.eng.Run()
	if got := binary.LittleEndian.Uint64(remote.Bytes()); got != 99 {
		t.Fatalf("after matching CAS remote = %d, want 99", got)
	}
	if old := binary.LittleEndian.Uint64(local.Bytes()); old != 42 {
		t.Fatalf("fetched = %d, want 42", old)
	}

	// Mismatching compare leaves the value and returns the current one.
	qa.PostAtomic(AtomicWR{Kind: CompareSwap, Remote: remote, Local: local, Compare: 1, Swap: 7})
	tb.eng.Run()
	if got := binary.LittleEndian.Uint64(remote.Bytes()); got != 99 {
		t.Fatalf("after failed CAS remote = %d, want 99", got)
	}
	if old := binary.LittleEndian.Uint64(local.Bytes()); old != 99 {
		t.Fatalf("failed CAS fetched = %d, want 99", old)
	}
}

func TestAtomicSequenceConsistent(t *testing.T) {
	// A burst of fetch-adds from two clients must all apply: the final
	// value equals the sum, and every fetched value is distinct (true
	// atomicity — this is the whole point of the verb).
	tb := newTestbed()
	tb.net.AddNode(2)
	qa, _, remote, localA := atomicPair(tb)
	binary.LittleEndian.PutUint64(remote.Bytes(), 0)

	qc := tb.a.CreateQP(wire.RC)
	qd := tb.b.CreateQP(wire.RC)
	if err := Connect(qc, qd); err != nil {
		t.Fatal(err)
	}
	localC := tb.a.RegisterMR(1024)

	seen := map[uint64]bool{}
	record := func(buf []byte) func(Completion) {
		return func(Completion) {
			v := binary.LittleEndian.Uint64(buf)
			if seen[v] {
				t.Errorf("duplicate fetched value %d: atomicity violated", v)
			}
			seen[v] = true
		}
	}
	qa.SendCQ().SetHandler(record(localA.Bytes()))
	qc.SendCQ().SetHandler(record(localC.Bytes()))

	n := 20
	for i := 0; i < n; i++ {
		qp, loc := qa, localA
		if i%2 == 1 {
			qp, loc = qc, localC
		}
		// Sequential chaining keeps each requester's local buffer stable
		// per completion; interleave via alternating QPs.
		if err := qp.PostAtomic(AtomicWR{Kind: FetchAdd, Remote: remote, Local: loc, Add: 1}); err != nil {
			t.Fatal(err)
		}
		tb.eng.Run()
	}
	if got := binary.LittleEndian.Uint64(remote.Bytes()); got != uint64(n) {
		t.Fatalf("final counter = %d, want %d", got, n)
	}
	if len(seen) != n {
		t.Fatalf("distinct fetched values = %d, want %d", len(seen), n)
	}
}

func TestAtomicTransportRules(t *testing.T) {
	tb := newTestbed()
	remote := tb.b.RegisterMR(64)
	local := tb.a.RegisterMR(64)
	uc, _ := connectedPair(tb, wire.UC)
	if err := uc.PostAtomic(AtomicWR{Kind: FetchAdd, Remote: remote, Local: local}); !errors.Is(err, ErrVerbNotSupported) {
		t.Fatalf("UC atomic: %v", err)
	}
	ud := tb.a.CreateQP(wire.UD)
	if err := ud.PostAtomic(AtomicWR{Kind: FetchAdd, Remote: remote, Local: local}); !errors.Is(err, ErrVerbNotSupported) {
		t.Fatalf("UD atomic: %v", err)
	}
	dc := tb.a.CreateQP(wire.DC)
	if err := dc.PostAtomic(AtomicWR{Kind: FetchAdd, Remote: remote, Local: local}); !errors.Is(err, ErrNoDestination) {
		t.Fatalf("DC atomic without dest: %v", err)
	}
	dcDst := tb.b.CreateQP(wire.DC)
	binary.LittleEndian.PutUint64(remote.Bytes(), 5)
	if err := dc.PostAtomic(AtomicWR{Kind: FetchAdd, Remote: remote, Local: local, Add: 1, Dest: dcDst}); err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if got := binary.LittleEndian.Uint64(remote.Bytes()); got != 6 {
		t.Fatalf("DC atomic result = %d", got)
	}
}

func TestAtomicBounds(t *testing.T) {
	tb := newTestbed()
	qa, _, remote, local := atomicPair(tb)
	if err := qa.PostAtomic(AtomicWR{Kind: FetchAdd, Remote: remote, RemoteOff: 60, Local: local}); !errors.Is(err, ErrBounds) {
		t.Fatalf("remote bounds: %v", err)
	}
	if err := qa.PostAtomic(AtomicWR{Kind: FetchAdd, Remote: remote, Local: local, LocalOff: 60}); !errors.Is(err, ErrBounds) {
		t.Fatalf("local bounds: %v", err)
	}
	rc := tb.a.CreateQP(wire.RC)
	if err := rc.PostAtomic(AtomicWR{Kind: FetchAdd, Remote: remote, Local: local}); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("unconnected RC: %v", err)
	}
}

func TestAtomicsAreSlow(t *testing.T) {
	// The substrate's calibration point: a stream of atomics sustains
	// only a few Mops (the serializing read-modify-write), far below
	// WRITE rates — why high-rate designs avoid them.
	tb := newTestbed()
	qa, _, remote, local := atomicPair(tb)
	count := 0
	qa.SendCQ().SetHandler(func(Completion) { count++ })
	n := 2000
	for i := 0; i < n; i++ {
		qa.PostAtomic(AtomicWR{Kind: FetchAdd, Remote: remote, Local: local, Add: 1})
	}
	tb.eng.Run()
	if count != n {
		t.Fatalf("completions = %d/%d", count, n)
	}
	mops := float64(n) / tb.eng.Now().Seconds() / 1e6
	if mops > 4 || mops < 1 {
		t.Fatalf("atomic rate = %.2f Mops, want ~2-3", mops)
	}
	if got := binary.LittleEndian.Uint64(remote.Bytes()); got != uint64(n) {
		t.Fatalf("final counter = %d", got)
	}
	if ATOMIC.String() != "ATOMIC" {
		t.Fatal("verb name")
	}
}
