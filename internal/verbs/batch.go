package verbs

import (
	"herdkv/internal/sim"
	"herdkv/internal/wire"
)

// PostSendBatch posts several work requests with a single doorbell.
//
// The single-verb path (PostSend) models BlueFlame-style posting: the
// whole WQE crosses PCIe as write-combined PIO, minimizing latency. A
// batch instead writes the WQEs into the host send queue, rings one
// doorbell, and lets the NIC fetch all the WQEs with one DMA read —
// trading one non-posted PCIe round trip of latency for a large
// reduction in per-verb PIO cost. This is the standard message-rate
// technique on mlx4/mlx5 hardware and the natural next optimization
// after the paper's inlining/unsignaled ladder.
//
// Validation is atomic: if any work request is invalid, nothing is
// posted and the offending error is returned.
func (qp *QP) PostSendBatch(wrs []SendWR) error {
	if len(wrs) == 0 {
		return nil
	}
	if len(wrs) == 1 {
		return qp.PostSend(wrs[0])
	}

	// Validate everything up front.
	ops := make([]*sendOp, 0, len(wrs))
	totalWQE := 0
	for _, wr := range wrs {
		op, err := qp.prepareOp(wr)
		if err != nil {
			return err
		}
		inlineBytes := 0
		if op.inline {
			inlineBytes = len(op.payload)
		}
		totalWQE += qp.host.nic.WQEBytes(qp.transport, inlineBytes)
		ops = append(ops, op)
	}
	qp.opQueue = append(qp.opQueue, ops...)
	for _, op := range ops {
		qp.countPost(op.wr.Verb, len(op.payload), op.inline, op.wr.Signaled)
	}

	n := qp.host.nic
	// One doorbell (a single MMIO word), then the NIC pulls the WQEs.
	n.Bus().PIOWrite(8, func(sim.Time) {
		n.Bus().DMARead(totalWQE, func(sim.Time) {
			pending := 0
			for _, op := range ops {
				op := op
				if !op.inline && len(op.payload) > 0 {
					pending++
					n.Bus().DMARead(len(op.payload), func(sim.Time) {
						op.ready = true
						pending--
						if pending == 0 {
							qp.pump()
						}
					})
					continue
				}
				op.ready = true
			}
			if pending == 0 {
				qp.pump()
			}
		})
	})
	return nil
}

// prepareOp validates wr and builds its sendOp without posting it.
func (qp *QP) prepareOp(wr SendWR) (*sendOp, error) {
	if qp.errored {
		return nil, ErrQPState
	}
	if !Supports(qp.transport, wr.Verb) || wr.Verb == RECV {
		return nil, ErrVerbNotSupported
	}
	var dst *QP
	switch {
	case qp.transport == wire.UD || qp.transport == wire.DC:
		if wr.Dest == nil {
			return nil, ErrNoDestination
		}
		dst = wr.Dest
	default:
		if qp.remote == nil {
			return nil, ErrNotConnected
		}
		dst = qp.remote
	}
	var payload []byte
	switch wr.Verb {
	case WRITE, SEND:
		if wr.Verb == WRITE {
			if wr.Remote == nil || wr.RemoteOff < 0 || wr.RemoteOff+len(wr.Data) > wr.Remote.Len() {
				return nil, ErrBounds
			}
		}
		payload = make([]byte, len(wr.Data))
		copy(payload, wr.Data)
	case READ:
		if wr.Remote == nil || wr.RemoteOff < 0 || wr.Len < 0 || wr.RemoteOff+wr.Len > wr.Remote.Len() {
			return nil, ErrBounds
		}
		if wr.Local == nil || wr.LocalOff < 0 || wr.LocalOff+wr.Len > wr.Local.Len() {
			return nil, ErrBounds
		}
	}
	inline := wr.Inline && wr.Verb != READ
	if inline && len(payload) > qp.host.nic.Params().InlineMax {
		return nil, ErrInlineTooLarge
	}
	return &sendOp{wr: wr, payload: payload, dst: dst, inline: inline}, nil
}
