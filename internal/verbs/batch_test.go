package verbs

import (
	"errors"
	"testing"

	"herdkv/internal/sim"
	"herdkv/internal/wire"
)

func TestBatchMovesAllPayloads(t *testing.T) {
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(1024)
	var wrs []SendWR
	for i := 0; i < 8; i++ {
		wrs = append(wrs, SendWR{
			Verb: WRITE, Data: []byte{byte(i + 1)}, Remote: mr, RemoteOff: i, Inline: true,
		})
	}
	if err := qa.PostSendBatch(wrs); err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	for i := 0; i < 8; i++ {
		if mr.Bytes()[i] != byte(i+1) {
			t.Fatalf("write %d lost: % x", i, mr.Bytes()[:8])
		}
	}
}

func TestBatchPreservesOrder(t *testing.T) {
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(64)
	var order []byte
	mr.Watch(0, 64, func(off, n int) { order = append(order, mr.Bytes()[off]) })
	var wrs []SendWR
	for i := 1; i <= 5; i++ {
		wrs = append(wrs, SendWR{Verb: WRITE, Data: []byte{byte(i)}, Remote: mr, RemoteOff: i, Inline: true})
	}
	qa.PostSendBatch(wrs)
	tb.eng.Run()
	for i, v := range order {
		if v != byte(i+1) {
			t.Fatalf("batch delivered out of order: %v", order)
		}
	}
}

func TestBatchAtomicValidation(t *testing.T) {
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(64)
	wrs := []SendWR{
		{Verb: WRITE, Data: []byte{1}, Remote: mr, Inline: true},
		{Verb: READ, Remote: mr, Len: 8}, // READ on UC: invalid
	}
	if err := qa.PostSendBatch(wrs); !errors.Is(err, ErrVerbNotSupported) {
		t.Fatalf("err = %v", err)
	}
	tb.eng.Run()
	if mr.Bytes()[0] != 0 {
		t.Fatal("invalid batch partially executed")
	}
}

func TestBatchEmptyAndSingle(t *testing.T) {
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(64)
	if err := qa.PostSendBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSendBatch([]SendWR{{Verb: WRITE, Data: []byte{9}, Remote: mr, Inline: true}}); err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if mr.Bytes()[0] != 9 {
		t.Fatal("single-element batch did not execute")
	}
}

func TestBatchRaisesThroughputAddsLatency(t *testing.T) {
	// Batching amortizes PIO: higher message rate, but each batch eats a
	// non-posted WQE fetch, so a lone op's latency grows.
	run := func(batch int, nOps int) (rate float64, first sim.Time) {
		tb := newTestbed()
		qa, _ := connectedPair(tb, wire.UC)
		mr := tb.b.RegisterMR(4096)
		delivered := 0
		mr.Watch(0, 4096, func(int, int) { delivered++ })
		payload := make([]byte, 32)
		for i := 0; i < nOps; i += batch {
			var wrs []SendWR
			for j := 0; j < batch; j++ {
				wrs = append(wrs, SendWR{Verb: WRITE, Data: payload, Remote: mr, RemoteOff: (i + j) % 64 * 64, Inline: true})
			}
			qa.PostSendBatch(wrs)
		}
		var firstAt sim.Time
		mr.Watch(0, 4096, func(int, int) {
			if firstAt == 0 {
				firstAt = tb.eng.Now()
			}
		})
		tb.eng.Run()
		if delivered != nOps {
			t.Fatalf("delivered %d/%d", delivered, nOps)
		}
		return float64(nOps) / tb.eng.Now().Seconds() / 1e6, firstAt
	}
	soloRate, _ := run(1, 512)
	batchRate, _ := run(8, 512)
	if batchRate <= soloRate*1.2 {
		t.Fatalf("batching should raise the message rate: %.1f vs %.1f Mops", batchRate, soloRate)
	}
	// Latency of the first op: batched path includes the WQE fetch RTT.
	_, soloFirst := run(1, 8)
	_, batchFirst := run(8, 8)
	if batchFirst <= soloFirst {
		t.Fatalf("batched first delivery (%v) should be later than solo (%v)", batchFirst, soloFirst)
	}
}

func TestBatchWithNonInlinePayloads(t *testing.T) {
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(4096)
	big := make([]byte, 512)
	for i := range big {
		big[i] = 0x5a
	}
	wrs := []SendWR{
		{Verb: WRITE, Data: big, Remote: mr, RemoteOff: 0},
		{Verb: WRITE, Data: []byte{1}, Remote: mr, RemoteOff: 1024, Inline: true},
		{Verb: WRITE, Data: big, Remote: mr, RemoteOff: 2048},
	}
	if err := qa.PostSendBatch(wrs); err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if mr.Bytes()[0] != 0x5a || mr.Bytes()[1024] != 1 || mr.Bytes()[2048] != 0x5a {
		t.Fatal("mixed batch payloads lost")
	}
}
