package verbs

import (
	"bytes"
	"errors"
	"testing"

	"herdkv/internal/sim"
	"herdkv/internal/wire"
)

func TestDCSupportsAllVerbs(t *testing.T) {
	for _, v := range []Verb{SEND, RECV, WRITE, READ} {
		if !Supports(wire.DC, v) {
			t.Errorf("DC should support %v", v)
		}
	}
}

func TestDCCannotConnect(t *testing.T) {
	tb := newTestbed()
	a := tb.a.CreateQP(wire.DC)
	b := tb.b.CreateQP(wire.DC)
	if err := Connect(a, b); !errors.Is(err, ErrVerbNotSupported) {
		t.Fatalf("connecting DC QPs: %v", err)
	}
}

func TestDCWriteNeedsDest(t *testing.T) {
	tb := newTestbed()
	qp := tb.a.CreateQP(wire.DC)
	mr := tb.b.RegisterMR(64)
	err := qp.PostSend(SendWR{Verb: WRITE, Data: []byte("x"), Remote: mr})
	if !errors.Is(err, ErrNoDestination) {
		t.Fatalf("err = %v, want ErrNoDestination", err)
	}
}

func TestDCWriteMovesBytes(t *testing.T) {
	tb := newTestbed()
	src := tb.a.CreateQP(wire.DC)
	dst := tb.b.CreateQP(wire.DC)
	mr := tb.b.RegisterMR(128)
	err := src.PostSend(SendWR{
		Verb: WRITE, Data: []byte("dynamically connected"),
		Dest: dst, Remote: mr, RemoteOff: 8, Inline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if !bytes.Equal(mr.Bytes()[8:8+21], []byte("dynamically connected")) {
		t.Fatalf("remote = %q", mr.Bytes()[8:29])
	}
}

func TestDCReadFetchesBytes(t *testing.T) {
	tb := newTestbed()
	src := tb.a.CreateQP(wire.DC)
	dst := tb.b.CreateQP(wire.DC)
	remote := tb.b.RegisterMR(64)
	copy(remote.Bytes(), []byte("dc read data"))
	local := tb.a.RegisterMR(64)
	err := src.PostSend(SendWR{
		Verb: READ, Dest: dst, Remote: remote, Local: local, Len: 12, Signaled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if string(local.Bytes()[:12]) != "dc read data" {
		t.Fatalf("READ over DC = %q", local.Bytes()[:12])
	}
}

func TestDCReliableCompletion(t *testing.T) {
	// DC is a reliable transport: a signaled WRITE completes only after
	// the ACK round trip, like RC.
	tb := newTestbed()
	src := tb.a.CreateQP(wire.DC)
	dst := tb.b.CreateQP(wire.DC)
	mr := tb.b.RegisterMR(64)
	var done sim.Time
	src.SendCQ().SetHandler(func(c Completion) { done = c.At })
	src.PostSend(SendWR{Verb: WRITE, Data: []byte("x"), Dest: dst, Remote: mr, Inline: true, Signaled: true})
	tb.eng.Run()
	if done < sim.Microsecond {
		t.Fatalf("DC completion at %v ns — missing the ACK round trip", done.Nanoseconds())
	}
}

func TestDCSharedResponderContext(t *testing.T) {
	// Many DC initiators hitting one host must share a single responder
	// context: the receive cache sees one entry, so hit rate stays high
	// regardless of peer count (unlike UC, Figure 12's limiter).
	tb := newTestbed()
	// Enough distinct sources to overwhelm a per-QP cache if one were
	// (wrongly) used. All target host B.
	targets := tb.b.CreateQP(wire.DC)
	mr := tb.b.RegisterMR(1 << 16)
	nSrc := 600
	done := 0
	for i := 0; i < nSrc; i++ {
		src := tb.a.CreateQP(wire.DC)
		src.PostSend(SendWR{
			Verb: WRITE, Data: []byte{byte(i)}, Dest: targets,
			Remote: mr, RemoteOff: i, Inline: true,
		})
		done++
	}
	tb.eng.Run()
	if hr := tb.b.NIC().RecvCtxHitRate(); hr < 0.99 {
		t.Fatalf("DC responder hit rate = %.3f, want ~1 (shared context)", hr)
	}
	for i := 0; i < nSrc; i++ {
		if mr.Bytes()[i] != byte(i) {
			t.Fatalf("write %d lost", i)
		}
	}
}

func TestDCRetargetCostOnlyOnPeerSwitch(t *testing.T) {
	// Alternating between two peers pays the reconnect each time;
	// staying with one peer pays it once.
	elapsed := func(alternate bool) sim.Time {
		tb := newTestbed()
		tb.net.AddNode(2)
		src := tb.a.CreateQP(wire.DC)
		d1 := tb.b.CreateQP(wire.DC)
		d2 := tb.b.CreateQP(wire.DC) // same host, different QP — still a retarget
		mr := tb.b.RegisterMR(4096)
		n := 200
		for i := 0; i < n; i++ {
			dst := d1
			if alternate && i%2 == 1 {
				dst = d2
			}
			src.PostSend(SendWR{Verb: WRITE, Data: []byte{1}, Dest: dst, Remote: mr, RemoteOff: i, Inline: true})
		}
		tb.eng.Run()
		return tb.eng.Now()
	}
	same, alt := elapsed(false), elapsed(true)
	if alt <= same {
		t.Fatalf("alternating peers (%v) should cost more than a stable peer (%v)", alt, same)
	}
}
