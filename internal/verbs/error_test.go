package verbs

import (
	"errors"
	"testing"

	"herdkv/internal/wire"
)

func TestSetErrorFlushesAndRefusesWork(t *testing.T) {
	tb := newTestbed()
	qa, qb := connectedPair(tb, wire.RC)

	var sendComps, recvComps []Completion
	qa.SendCQ().SetHandler(func(c Completion) { sendComps = append(sendComps, c) })
	qb.RecvCQ().SetHandler(func(c Completion) { recvComps = append(recvComps, c) })

	mr := tb.b.RegisterMR(4096)
	if err := qb.PostRecv(mr, 0, 1024, 1); err != nil {
		t.Fatal(err)
	}
	if err := qb.PostRecv(mr, 1024, 1024, 2); err != nil {
		t.Fatal(err)
	}
	if err := qa.PostSend(SendWR{Verb: SEND, Data: []byte("x"), Dest: qb, Signaled: true}); err != nil {
		t.Fatal(err)
	}

	// Error both sides before the engine moves: everything posted must
	// flush in error rather than vanish.
	qa.SetError()
	qb.SetError()
	tb.eng.Run()

	if !qa.Errored() || !qb.Errored() {
		t.Fatal("queue pairs not marked errored")
	}
	if len(sendComps) != 1 || !sendComps[0].Flushed {
		t.Fatalf("send flush completions = %+v, want one flushed", sendComps)
	}
	if len(recvComps) != 2 || !recvComps[0].Flushed || !recvComps[1].Flushed {
		t.Fatalf("recv flush completions = %+v, want two flushed", recvComps)
	}

	// New work on an errored QP is refused.
	if err := qa.PostSend(SendWR{Verb: SEND, Data: []byte("y"), Dest: qb}); !errors.Is(err, ErrQPState) {
		t.Fatalf("PostSend on errored QP: %v, want ErrQPState", err)
	}
	if err := qb.PostRecv(mr, 0, 1024, 3); !errors.Is(err, ErrQPState) {
		t.Fatalf("PostRecv on errored QP: %v, want ErrQPState", err)
	}
}

func TestInboundToErroredQPIsDropped(t *testing.T) {
	tb := newTestbed()
	qa, qb := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(1024)

	qb.SetError()
	if err := qa.PostSend(SendWR{Verb: WRITE, Data: []byte("ghost"), Remote: mr, RemoteOff: 0, Inline: true}); err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()

	for _, b := range mr.Bytes()[:5] {
		if b != 0 {
			t.Fatalf("WRITE landed in memory behind an errored QP: %q", mr.Bytes()[:5])
		}
	}
}
