package verbs

import (
	"fmt"

	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
	"herdkv/internal/wire"
)

// sendOp is one posted work request moving through the requester-side
// pipeline: PIO (doorbell + inline WQE) -> optional payload DMA fetch ->
// NIC processing -> wire. Per-QP ordering is strict FIFO, and a QP with
// ReadWindow outstanding READs stalls (the RNIC fences its send queue),
// which is the paper's "each queue pair can only service a few
// outstanding READ requests".
type sendOp struct {
	wr      SendWR
	payload []byte
	dst     *QP
	inline  bool
	ready   bool
}

// PostSend posts wr to the queue pair's send queue. Validation errors
// are returned synchronously; the operation itself proceeds in virtual
// time.
func (qp *QP) PostSend(wr SendWR) error {
	op, err := qp.prepareOp(wr)
	if err != nil {
		return fmt.Errorf("verbs: %v on %v: %w", wr.Verb, qp.transport, err)
	}
	qp.opQueue = append(qp.opQueue, op)
	qp.countPost(op.wr.Verb, len(op.payload), op.inline, op.wr.Signaled)

	n := qp.host.nic
	inlineBytes := 0
	if op.inline {
		inlineBytes = len(op.payload)
	}
	inline := op.inline
	n.Bus().PIOWrite(n.WQEBytes(qp.transport, inlineBytes), func(at sim.Time) {
		op.wr.Trace.Mark("pio", at)
		if !inline && len(op.payload) > 0 {
			// Payload fetched from host memory by DMA before transmit.
			n.Bus().DMARead(len(op.payload), func(at sim.Time) {
				op.wr.Trace.Mark("fetch", at)
				op.ready = true
				qp.pump()
			})
			return
		}
		op.ready = true
		qp.pump()
	})
	return nil
}

// pump issues ready head-of-queue operations in order, respecting the
// READ window fence.
func (qp *QP) pump() {
	if qp.errored {
		return // SetError already flushed the queue
	}
	for len(qp.opQueue) > 0 {
		op := qp.opQueue[0]
		if !op.ready {
			return
		}
		if op.wr.Verb == READ && qp.outstandingReads >= qp.host.nic.Params().ReadWindow {
			return
		}
		qp.opQueue = qp.opQueue[1:]
		if op.wr.Verb == READ {
			qp.outstandingReads++
		}
		qp.issue(op)
	}
}

// issue runs the NIC processing for op and hands it to the wire.
func (qp *QP) issue(op *sendOp) {
	n := qp.host.nic
	p := n.Params()

	puExtra, latExtra := n.TouchSendCtx(qp.globalKey())
	work := puExtra
	switch op.wr.Verb {
	case READ:
		work += p.TxReadReq
	default:
		work += p.TxWQE
	}
	if reliable(qp.transport) {
		work += p.RCReqExtra
	}
	if qp.transport == wire.DC && op.dst != qp.lastDest {
		// DC initiators re-target with an in-band connect handshake.
		work += p.DCRetargetPU
		qp.lastDest = op.dst
	}
	if !op.inline && len(op.payload) > 0 {
		work += p.NonInlineExtra
	}
	// READ completion state is integral to the verb (the response drives
	// it); SignaledExtra models the send-side CQE machinery that
	// selective signaling elides for WRITE/SEND.
	if op.wr.Signaled && op.wr.Verb != READ {
		work += p.SignaledExtra
	}

	n.PU(work, func(sim.Time) {
		qp.orderedAfter(&qp.txGate, latExtra, func() { qp.transmit(op) })
	})
}

// orderedAfter schedules fn at now+delay, but never before the gate's
// previous schedule; the gate advances so per-QP order is preserved even
// when one verb stalls on a context fetch and the next does not.
func (qp *QP) orderedAfter(gate *sim.Time, delay sim.Time, fn func()) {
	eng := qp.host.eng
	at := eng.Now() + delay
	if at < *gate {
		at = *gate
	}
	*gate = at
	eng.At(at, fn)
}

func (qp *QP) transmit(op *sendOp) {
	h := qp.host
	n := h.nic
	src, dstNode := n.Node(), op.dst.host.Node()
	net := n.Net()
	op.wr.Trace.Mark("nic", h.eng.Now())

	switch op.wr.Verb {
	case WRITE:
		dst := op.dst
		srcQP := qp
		wr := op.wr
		net.SendData(src, dstNode, qp.transport, len(op.payload), func(d wire.Delivery) {
			dst.deliverWrite(srcQP, damage(op.payload, d.Corrupt), wr)
		})
		qp.localSendComplete(op)

	case SEND:
		dst := op.dst
		srcQP := qp
		tr := op.wr.Trace
		net.SendData(src, dstNode, qp.transport, len(op.payload), func(d wire.Delivery) {
			dst.deliverSend(srcQP, damage(op.payload, d.Corrupt), tr)
		})
		qp.localSendComplete(op)

	case READ:
		// READ requests carry only headers plus an RETH (16 B).
		dst := op.dst
		srcQP := qp
		net.SendWire(src, dstNode, net.Params().Header(qp.transport)+16, func(sim.Time) {
			dst.deliverReadRequest(srcQP, op)
		})
	}
}

// damage models an injected corruption burst on a delivered payload:
// the trailing 16 bytes (a keyhash, in HERD's slot formats) are zeroed
// and the rest is bit-flipped. The transform is deterministic so
// corrupted runs replay exactly; intact deliveries return the payload
// untouched. Applications detect the damage structurally — HERD's
// keyhash-nonzero and length checks reject such requests, and its
// response status check discards such responses.
func damage(payload []byte, corrupt bool) []byte {
	if !corrupt {
		return payload
	}
	out := make([]byte, len(payload))
	tail := len(out) - 16
	if tail < 0 {
		tail = 0
	}
	for i := 0; i < tail; i++ {
		out[i] = payload[i] ^ 0x5a
	}
	return out
}

// localSendComplete finishes the requester side of a WRITE or SEND. On
// unreliable transports the verb completes as soon as it is on the wire;
// on RC, completion waits for the responder's ACK.
func (qp *QP) localSendComplete(op *sendOp) {
	if reliable(qp.transport) {
		qp.awaitingAck = append(qp.awaitingAck, pendingAck{wr: op.wr, bytes: len(op.payload)})
		return
	}
	if op.wr.Signaled {
		qp.signalCompletion(op.wr, len(op.payload))
	}
}

// signalCompletion DMA-writes a CQE to host memory and pushes the
// completion to the send CQ.
func (qp *QP) signalCompletion(wr SendWR, bytes int) {
	n := qp.host.nic
	n.Bus().DMAWrite(n.Params().CQEBytes, func(at sim.Time) {
		wr.Trace.Mark("cqe", at)
		qp.host.telCompleted[wr.Verb].Inc()
		qp.sendCQ.push(Completion{
			QPN: qp.qpn, WRID: wr.WRID, Verb: wr.Verb, Bytes: bytes, At: at,
		})
	})
}

// deliverWrite handles an inbound WRITE at the responder NIC: context
// lookup, processing, DMA of the payload into the target region, and an
// ACK if the transport is reliable. The responder CPU is not involved
// (memory semantics) — except for WRITE-with-immediate, which also
// consumes a RECV and raises a completion carrying the immediate.
func (qp *QP) deliverWrite(src *QP, payload []byte, wr SendWR) {
	if qp.errored {
		qp.droppedSends++
		qp.host.telDropped.Inc()
		return
	}
	n := qp.host.nic
	p := n.Params()
	wr.Trace.Mark("wire", qp.host.eng.Now())
	target, off := wr.Remote, wr.RemoteOff
	puExtra, latExtra := n.TouchRecvCtx(qp.recvCtxKey())
	work := p.RxWrite + puExtra
	if reliable(qp.transport) {
		work += p.RCRespExtra
	}
	n.PU(work, func(sim.Time) {
		fin := func() {
			var rb recvBuf
			if wr.HasImm {
				var ok bool
				rb, ok = qp.popRecv()
				if !ok {
					// No RECV: the whole message is dropped.
					qp.droppedSends++
					qp.host.telDropped.Inc()
					return
				}
			}
			cqe := 0
			if wr.HasImm {
				cqe = p.CQEBytes
			}
			n.Bus().DMAWrite(len(payload)+cqe, func(at sim.Time) {
				wr.Trace.Mark("dma", at)
				copy(target.buf[off:off+len(payload)], payload)
				target.landed(off, len(payload))
				if wr.HasImm {
					qp.host.telCompleted[RECV].Inc()
					qp.recvCQ.push(Completion{
						QPN: qp.qpn, WRID: rb.wrid, Verb: RECV,
						Bytes: len(payload), At: at,
						SrcQPN: src.qpn, ImmDeliv: true, Imm: wr.Imm,
						Trace: wr.Trace,
					})
				}
			})
			if reliable(qp.transport) {
				qp.sendAck(src)
			}
		}
		qp.orderedAfter(&qp.rxGate, latExtra, fin)
	})
}

// deliverSend handles an inbound SEND: it consumes the head RECV, DMAs
// payload and CQE to host memory, and completes on the recv CQ (channel
// semantics — the responder CPU posted the RECV and will poll the CQE).
func (qp *QP) deliverSend(src *QP, payload []byte, tr *telemetry.Trace) {
	if qp.errored {
		qp.droppedSends++
		qp.host.telDropped.Inc()
		return
	}
	n := qp.host.nic
	p := n.Params()
	tr.Mark("wire", qp.host.eng.Now())
	puExtra, latExtra := n.TouchRecvCtx(qp.recvCtxKey())
	work := p.RxSend + puExtra
	if reliable(qp.transport) {
		work += p.RCRespExtra
	}
	n.PU(work, func(sim.Time) {
		fin := func() {
			rb, ok := qp.popRecv()
			if !ok {
				qp.droppedSends++
				qp.host.telDropped.Inc()
				return
			}
			m := len(payload)
			if m > rb.len {
				m = rb.len
			}
			n.Bus().DMAWrite(m+p.CQEBytes, func(at sim.Time) {
				tr.Mark("recv", at)
				copy(rb.mr.buf[rb.off:rb.off+m], payload[:m])
				qp.host.telCompleted[RECV].Inc()
				qp.recvCQ.push(Completion{
					QPN: qp.qpn, WRID: rb.wrid, Verb: RECV, Bytes: m, At: at,
					Data: rb.mr.buf[rb.off : rb.off+m], SrcQPN: src.qpn,
					Trace: tr,
				})
			})
			if reliable(qp.transport) {
				qp.sendAck(src)
			}
		}
		qp.orderedAfter(&qp.rxGate, latExtra, fin)
	})
}

// deliverReadRequest services an inbound READ at the responder NIC: a
// non-posted DMA read of the requested bytes from host memory, then the
// response packet. Again no responder CPU involvement.
func (qp *QP) deliverReadRequest(src *QP, op *sendOp) {
	if qp.errored {
		qp.droppedSends++
		qp.host.telDropped.Inc()
		return
	}
	n := qp.host.nic
	p := n.Params()
	op.wr.Trace.Mark("wire", qp.host.eng.Now())
	puExtra, latExtra := n.TouchRecvCtx(qp.recvCtxKey())
	n.PU(p.RxReadReq+puExtra, func(sim.Time) {
		fin := func() {
			n.Bus().DMARead(op.wr.Len, func(at sim.Time) {
				op.wr.Trace.Mark("dma", at)
				data := make([]byte, op.wr.Len)
				copy(data, op.wr.Remote.buf[op.wr.RemoteOff:op.wr.RemoteOff+op.wr.Len])
				n.Net().Send(n.Node(), src.host.Node(), qp.transport, op.wr.Len, func(sim.Time) {
					src.deliverReadResponse(op, data)
				})
			})
		}
		qp.orderedAfter(&qp.rxGate, latExtra, fin)
	})
}

// deliverReadResponse lands READ data at the requester: processing, DMA
// of payload (plus CQE if signaled) into the local region, completion,
// and release of the READ window slot.
func (qp *QP) deliverReadResponse(op *sendOp, data []byte) {
	if qp.errored {
		return // the READ was flushed in error at crash time
	}
	n := qp.host.nic
	p := n.Params()
	op.wr.Trace.Mark("resp-wire", qp.host.eng.Now())
	n.PU(p.RxReadResp, func(sim.Time) {
		bytes := len(data)
		if op.wr.Signaled {
			bytes += p.CQEBytes
		}
		n.Bus().DMAWrite(bytes, func(at sim.Time) {
			op.wr.Trace.Mark("cqe", at)
			copy(op.wr.Local.buf[op.wr.LocalOff:op.wr.LocalOff+op.wr.Len], data)
			if op.wr.Signaled {
				qp.host.telCompleted[READ].Inc()
				qp.sendCQ.push(Completion{
					QPN: qp.qpn, WRID: op.wr.WRID, Verb: READ, Bytes: op.wr.Len, At: at,
				})
			}
			qp.outstandingReads--
			qp.pump()
		})
	})
}

// sendAck emits an RC acknowledgement back to the requester.
func (qp *QP) sendAck(src *QP) {
	n := qp.host.nic
	p := n.Params()
	n.PU(p.TxAck, func(sim.Time) {
		n.Net().SendWire(n.Node(), src.host.Node(), n.Net().Params().HdrAck, func(sim.Time) {
			src.deliverAck()
		})
	})
}

// deliverAck completes the oldest un-ACKed RC WRITE/SEND at the
// requester (RC delivers strictly in order).
func (qp *QP) deliverAck() {
	n := qp.host.nic
	n.PU(n.Params().RxAck, func(sim.Time) {
		if qp.errored || len(qp.awaitingAck) == 0 {
			return
		}
		pa := qp.awaitingAck[0]
		qp.awaitingAck = qp.awaitingAck[1:]
		if pa.wr.Signaled {
			qp.signalCompletion(pa.wr, pa.bytes)
		}
	})
}
