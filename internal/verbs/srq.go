package verbs

// SRQ is a shared receive queue: many QPs draw their RECVs from one
// pool, so a server with hundreds of SEND-based connections provisions
// one buffer pool instead of per-QP pools. (Our SEND/SEND HERD mode
// gets the same effect with per-process UD QPs; SRQ completes the
// substrate for RC/UC SEND servers.)
type SRQ struct {
	host  *Host
	queue []recvBuf
}

// CreateSRQ returns an empty shared receive queue on h.
func (h *Host) CreateSRQ() *SRQ { return &SRQ{host: h} }

// PostRecv posts a receive buffer to the shared queue.
func (s *SRQ) PostRecv(mr *MR, off, n int, wrid uint64) error {
	if off < 0 || n < 0 || off+n > len(mr.buf) {
		return ErrBounds
	}
	s.queue = append(s.queue, recvBuf{mr: mr, off: off, len: n, wrid: wrid})
	return nil
}

// Len reports posted RECVs.
func (s *SRQ) Len() int { return len(s.queue) }

// AttachSRQ makes qp consume RECVs from s instead of its own receive
// queue. Completions still arrive on the QP's recv CQ. A QP must be
// attached before SENDs arrive and cannot mix attached and per-QP RECVs.
func (qp *QP) AttachSRQ(s *SRQ) { qp.srq = s }

// popRecv takes the next RECV for an inbound SEND, honoring SRQ
// attachment.
func (qp *QP) popRecv() (recvBuf, bool) {
	if qp.srq != nil {
		if len(qp.srq.queue) == 0 {
			return recvBuf{}, false
		}
		rb := qp.srq.queue[0]
		qp.srq.queue = qp.srq.queue[1:]
		return rb, true
	}
	if len(qp.recvQueue) == 0 {
		return recvBuf{}, false
	}
	rb := qp.recvQueue[0]
	qp.recvQueue = qp.recvQueue[1:]
	return rb, true
}
