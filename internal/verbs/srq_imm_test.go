package verbs

import (
	"bytes"
	"testing"

	"herdkv/internal/wire"
)

func TestSRQSharesRecvsAcrossQPs(t *testing.T) {
	tb := newTestbed()
	srq := tb.b.CreateSRQ()
	buf := tb.b.RegisterMR(4096)
	for i := 0; i < 4; i++ {
		if err := srq.PostRecv(buf, i*64, 64, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	qa1, qb1 := connectedPair(tb, wire.UC)
	qa2, qb2 := connectedPair(tb, wire.UC)
	qb1.AttachSRQ(srq)
	qb2.AttachSRQ(srq)

	var got []string
	qb1.RecvCQ().SetHandler(func(c Completion) { got = append(got, "qp1:"+string(c.Data)) })
	qb2.RecvCQ().SetHandler(func(c Completion) { got = append(got, "qp2:"+string(c.Data)) })

	qa1.PostSend(SendWR{Verb: SEND, Data: []byte("a"), Inline: true})
	qa2.PostSend(SendWR{Verb: SEND, Data: []byte("b"), Inline: true})
	qa1.PostSend(SendWR{Verb: SEND, Data: []byte("c"), Inline: true})
	tb.eng.Run()
	if len(got) != 3 {
		t.Fatalf("completions = %v", got)
	}
	if srq.Len() != 1 {
		t.Fatalf("SRQ has %d RECVs left, want 1", srq.Len())
	}
	// Exhaust the pool: the fourth and fifth SENDs split one RECV.
	qa1.PostSend(SendWR{Verb: SEND, Data: []byte("d"), Inline: true})
	qa2.PostSend(SendWR{Verb: SEND, Data: []byte("e"), Inline: true})
	tb.eng.Run()
	if srq.Len() != 0 {
		t.Fatal("SRQ not drained")
	}
	if qb1.DroppedSends()+qb2.DroppedSends() != 1 {
		t.Fatalf("drops = %d, want 1 after pool exhaustion",
			qb1.DroppedSends()+qb2.DroppedSends())
	}
}

func TestSRQBounds(t *testing.T) {
	tb := newTestbed()
	srq := tb.b.CreateSRQ()
	buf := tb.b.RegisterMR(64)
	if err := srq.PostRecv(buf, 60, 8, 0); err != ErrBounds {
		t.Fatalf("out-of-range SRQ recv: %v", err)
	}
}

func TestWriteWithImm(t *testing.T) {
	tb := newTestbed()
	qa, qb := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(1024)
	recvArea := tb.b.RegisterMR(64)
	qb.PostRecv(recvArea, 0, 64, 9)

	var comp Completion
	qb.RecvCQ().SetHandler(func(c Completion) { comp = c })

	payload := []byte("write plus doorbell")
	err := qa.PostSend(SendWR{
		Verb: WRITE, Data: payload, Remote: mr, RemoteOff: 100,
		Inline: true, HasImm: true, Imm: 0xfeedface,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	// Payload landed at the WRITE target, not the RECV buffer.
	if !bytes.Equal(mr.Bytes()[100:100+len(payload)], payload) {
		t.Fatal("payload not written to the target region")
	}
	if comp.WRID != 9 || !comp.ImmDeliv || comp.Imm != 0xfeedface {
		t.Fatalf("imm completion = %+v", comp)
	}
	if comp.Bytes != len(payload) {
		t.Fatalf("completion bytes = %d", comp.Bytes)
	}
}

func TestWriteWithImmNoRecvDropsWholeMessage(t *testing.T) {
	tb := newTestbed()
	qa, qb := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(64)
	qa.PostSend(SendWR{
		Verb: WRITE, Data: []byte{0xAA}, Remote: mr, Inline: true, HasImm: true, Imm: 1,
	})
	tb.eng.Run()
	if qb.DroppedSends() != 1 {
		t.Fatalf("drops = %d, want 1", qb.DroppedSends())
	}
	if mr.Bytes()[0] != 0 {
		t.Fatal("payload written despite missing RECV (message must drop whole)")
	}
}

func TestPlainWriteUnaffectedByImmPlumbing(t *testing.T) {
	tb := newTestbed()
	qa, qb := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(64)
	qa.PostSend(SendWR{Verb: WRITE, Data: []byte{7}, Remote: mr, Inline: true})
	tb.eng.Run()
	if mr.Bytes()[0] != 7 {
		t.Fatal("plain WRITE broken")
	}
	if qb.RecvCQ().Pending() != 0 {
		t.Fatal("plain WRITE produced a recv completion")
	}
}
