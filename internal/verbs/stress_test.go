package verbs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"herdkv/internal/wire"
)

// TestRandomOpStormProperty throws random mixes of verbs at random QPs
// across three hosts and checks conservation invariants: every WRITE
// lands exactly once, every READ completes with correct bytes, every
// SEND is either received (consuming one RECV) or counted as dropped,
// and the engine quiesces (no stuck events).
func TestRandomOpStormProperty(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		if len(opsRaw) > 150 {
			opsRaw = opsRaw[:150]
		}
		rnd := rand.New(rand.NewSource(seed))
		tb := newTestbed()
		tb.net.AddNode(2)

		// A small zoo of QPs.
		ucA, ucB := connectedPair(tb, wire.UC)
		rcA, rcB := connectedPair(tb, wire.RC)
		dcA := tb.a.CreateQP(wire.DC)
		dcB := tb.b.CreateQP(wire.DC)
		udA := tb.a.CreateQP(wire.UD)
		udB := tb.b.CreateQP(wire.UD)

		mrB := tb.b.RegisterMR(1 << 14)
		mrA := tb.a.RegisterMR(1 << 14)
		recvBuf := tb.b.RegisterMR(1 << 14)

		writes, landed := 0, 0
		mrB.Watch(0, 1<<14, func(int, int) { landed++ })

		reads, readsDone := 0, 0
		rcA.SendCQ().SetHandler(func(c Completion) {
			if c.Verb == READ {
				readsDone++
			}
		})

		sends, recvd := 0, 0
		for _, q := range []*QP{ucB, rcB, udB, dcB} {
			q := q
			q.RecvCQ().SetHandler(func(Completion) { recvd++ })
		}
		recvsPosted := 0

		for i, op := range opsRaw {
			switch op % 6 {
			case 0: // UC WRITE
				writes++
				ucA.PostSend(SendWR{Verb: WRITE, Data: []byte{byte(i)},
					Remote: mrB, RemoteOff: rnd.Intn(1 << 10), Inline: op%2 == 0})
			case 1: // RC WRITE signaled
				writes++
				rcA.PostSend(SendWR{Verb: WRITE, Data: make([]byte, int(op)+1),
					Remote: mrB, RemoteOff: rnd.Intn(1 << 10), Signaled: true})
			case 2: // DC WRITE
				writes++
				dcA.PostSend(SendWR{Verb: WRITE, Data: []byte{1, 2, 3}, Dest: dcB,
					Remote: mrB, RemoteOff: rnd.Intn(1 << 10), Inline: true})
			case 3: // RC READ
				reads++
				rcA.PostSend(SendWR{Verb: READ, Remote: mrB, RemoteOff: rnd.Intn(1 << 10),
					Local: mrA, LocalOff: rnd.Intn(1 << 10), Len: rnd.Intn(128) + 1, Signaled: true})
			case 4: // UD SEND, maybe without a RECV
				if op%2 == 0 {
					udB.PostRecv(recvBuf, 0, 1024, 0)
					recvsPosted++
				}
				sends++
				udA.PostSend(SendWR{Verb: SEND, Data: []byte{byte(i)}, Dest: udB, Inline: true})
			case 5: // RC SEND with a RECV
				rcB.PostRecv(recvBuf, 0, 1024, 0)
				recvsPosted++
				sends++
				rcA.PostSend(SendWR{Verb: SEND, Data: []byte{byte(i)}, Inline: true})
			}
		}
		tb.eng.Run()

		if tb.eng.Pending() != 0 {
			return false // engine must quiesce
		}
		if landed != writes {
			return false
		}
		if readsDone != reads {
			return false
		}
		dropped := int(ucB.DroppedSends() + rcB.DroppedSends() + udB.DroppedSends() + dcB.DroppedSends())
		return recvd+dropped == sends
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
