// Package verbs implements the RDMA verbs interface over the simulated
// RNIC, PCIe, and fabric models: queue pairs on RC/UC/UD transports,
// memory regions, completion queues, and the READ / WRITE / SEND / RECV
// verbs with inlining and selective signaling.
//
// The layer is functional as well as timed: WRITEs and SENDs move real
// bytes between registered memory regions, READs return real remote
// bytes, and completion events fire at the simulated instants the
// hardware would produce them. Systems built on top (HERD, Pilaf-em,
// FaRM-em) therefore run their actual protocols.
package verbs

import (
	"errors"
	"fmt"

	"herdkv/internal/nic"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
	"herdkv/internal/wire"
)

// Verb identifies an RDMA operation type.
type Verb int

// The verbs relevant to this work (Section 2.2.2), plus ATOMIC
// (compare-and-swap / fetch-and-add), which the substrate supports for
// completeness though no compared system uses it.
const (
	WRITE Verb = iota
	READ
	SEND
	RECV
	ATOMIC
)

// String returns the verb's conventional name.
func (v Verb) String() string {
	switch v {
	case WRITE:
		return "WRITE"
	case READ:
		return "READ"
	case SEND:
		return "SEND"
	case RECV:
		return "RECV"
	case ATOMIC:
		return "ATOMIC"
	}
	return "?"
}

// Errors returned by verb posting.
var (
	// ErrVerbNotSupported enforces Table 1: UC does not support READ,
	// and UD supports neither READ nor WRITE.
	ErrVerbNotSupported = errors.New("verbs: verb not supported on this transport")
	// ErrInlineTooLarge rejects inline payloads above the device limit.
	ErrInlineTooLarge = errors.New("verbs: inline payload exceeds device limit")
	// ErrNotConnected is returned for connected-transport verbs on an
	// unconnected QP.
	ErrNotConnected = errors.New("verbs: queue pair not connected")
	// ErrNoDestination is returned for UD SENDs without a destination.
	ErrNoDestination = errors.New("verbs: UD SEND requires a destination QP")
	// ErrBounds is returned when an access falls outside a memory region.
	ErrBounds = errors.New("verbs: access outside memory region")
	// ErrQPState is returned when posting to a queue pair in the error
	// state (its owning process crashed or it was explicitly errored).
	ErrQPState = errors.New("verbs: queue pair in error state")
)

// SupportedVerbs reports Table 1 of the paper: which verbs each
// transport supports. The Dynamically Connected transport (a Connect-IB
// feature, Section 5.5) behaves like RC at the verb level while
// addressing peers per-message like UD.
func SupportedVerbs(t wire.Transport) []Verb {
	switch t {
	case wire.RC, wire.DC:
		return []Verb{SEND, RECV, WRITE, READ}
	case wire.UC:
		return []Verb{SEND, RECV, WRITE}
	default:
		return []Verb{SEND, RECV}
	}
}

// reliable reports whether t acknowledges delivery (RC and DC).
func reliable(t wire.Transport) bool { return t == wire.RC || t == wire.DC }

// Supports reports whether transport t supports verb v.
func Supports(t wire.Transport, v Verb) bool {
	for _, s := range SupportedVerbs(t) {
		if s == v {
			return true
		}
	}
	return false
}

// MR is a registered memory region on one host.
type MR struct {
	host     *Host
	buf      []byte
	watchers []watcher
}

type watcher struct {
	lo, hi int
	fn     func(off, n int)
}

// Bytes exposes the region's backing memory.
func (m *MR) Bytes() []byte { return m.buf }

// Len returns the region size.
func (m *MR) Len() int { return len(m.buf) }

// Watch registers fn to run whenever an inbound WRITE lands in
// [lo, hi). HERD's request region and FaRM's circular buffers poll
// memory for new data; Watch is the simulation hook that tells the
// polling model when bytes became visible.
func (m *MR) Watch(lo, hi int, fn func(off, n int)) {
	m.watchers = append(m.watchers, watcher{lo: lo, hi: hi, fn: fn})
}

func (m *MR) landed(off, n int) {
	for _, w := range m.watchers {
		if off < w.hi && off+n > w.lo {
			w.fn(off, n)
		}
	}
}

// Completion describes a completed verb.
type Completion struct {
	QPN      uint32
	WRID     uint64
	Verb     Verb
	Bytes    int
	At       sim.Time
	Data     []byte // RECV: the received payload
	SrcQPN   uint32 // RECV on UD: the sender's QP number
	Dropped  bool   // SEND arriving with no posted RECV
	Flushed  bool   // WR flushed in error when its QP transitioned to error
	ImmDeliv bool   // RECV completed by a WRITE-with-immediate
	Imm      uint32 // immediate data (ImmDeliv completions)

	// Trace carries the lifecycle trace of the SEND that produced this
	// RECV completion, if the sender attached one — how a traced request
	// propagates to the consumer in channel-semantics (SEND/SEND) mode.
	Trace *telemetry.Trace
}

// CQ is a completion queue. Completions may be consumed either by
// polling or by an event handler (the natural style inside the
// simulator's event loop).
type CQ struct {
	queue   []Completion
	handler func(Completion)

	// depth tracks the queued-completion high-water mark (nil when
	// un-instrumented). Handler-consumed CQs never queue, so the mark
	// measures genuine polling backlog.
	depth *telemetry.Gauge
}

// NewCQ returns an empty completion queue.
func NewCQ() *CQ { return &CQ{} }

// SetHandler delivers future completions to fn instead of queueing them.
func (cq *CQ) SetHandler(fn func(Completion)) { cq.handler = fn }

// Poll removes and returns up to max queued completions.
func (cq *CQ) Poll(max int) []Completion {
	if max <= 0 || len(cq.queue) == 0 {
		return nil
	}
	n := max
	if n > len(cq.queue) {
		n = len(cq.queue)
	}
	out := make([]Completion, n)
	copy(out, cq.queue[:n])
	cq.queue = cq.queue[n:]
	return out
}

// Pending returns the number of queued completions.
func (cq *CQ) Pending() int { return len(cq.queue) }

func (cq *CQ) push(c Completion) {
	if cq.handler != nil {
		cq.handler(c)
		return
	}
	cq.queue = append(cq.queue, c)
	cq.depth.Set(int64(len(cq.queue)))
}

// Host is one machine's RDMA endpoint: a NIC plus its registered
// memory and queue pairs.
type Host struct {
	eng     *sim.Engine
	nic     *nic.NIC
	qps     map[uint32]*QP
	nextQPN uint32

	// Telemetry (nil handles when un-instrumented): per-verb posted and
	// completed counters, inlined-vs-DMA'd and signaled-vs-unsignaled
	// splits, and the shared CQ-depth high-water gauge. Counter names
	// are registry-global, so hosts aggregate cluster-wide.
	tel          *telemetry.Sink
	telPosted    [ATOMIC + 1]*telemetry.Counter
	telCompleted [ATOMIC + 1]*telemetry.Counter
	telInline    *telemetry.Counter
	telDMA       *telemetry.Counter
	telSignaled  *telemetry.Counter
	telUnsig     *telemetry.Counter
	telDropped   *telemetry.Counter
	telCQDepth   *telemetry.Gauge
}

// NewHost wraps n as a verbs endpoint.
func NewHost(eng *sim.Engine, n *nic.NIC) *Host {
	return &Host{eng: eng, nic: n, qps: make(map[uint32]*QP)}
}

// SetTelemetry attaches the sink and eagerly registers the per-verb
// counters (so a metrics dump always lists every verb, used or not).
// Call it before creating queue pairs: CQ gauges and per-QP counters
// are bound at CreateQP time.
func (h *Host) SetTelemetry(s *telemetry.Sink) {
	h.tel = s
	for v := WRITE; v <= ATOMIC; v++ {
		//lint:allow telemnames — per-verb names verbs.<VERB>.posted/.completed are catalogued in docs/OBSERVABILITY.md
		h.telPosted[v] = s.Counter("verbs." + v.String() + ".posted")
		//lint:allow telemnames — see above; <VERB> ranges over WRITE..ATOMIC
		h.telCompleted[v] = s.Counter("verbs." + v.String() + ".completed")
	}
	h.telInline = s.Counter("verbs.payload.inlined")
	h.telDMA = s.Counter("verbs.payload.dma")
	h.telSignaled = s.Counter("verbs.posted.signaled")
	h.telUnsig = s.Counter("verbs.posted.unsignaled")
	h.telDropped = s.Counter("verbs.send.dropped")
	h.telCQDepth = s.Gauge("verbs.cq.depth.hwm")
}

// Telemetry returns the attached sink (nil when un-instrumented).
func (h *Host) Telemetry() *telemetry.Sink { return h.tel }

// NIC returns the underlying device model.
func (h *Host) NIC() *nic.NIC { return h.nic }

// Node returns the host's fabric address.
func (h *Host) Node() wire.NodeID { return h.nic.Node() }

// RegisterMR registers size bytes of memory with the NIC.
func (h *Host) RegisterMR(size int) *MR {
	return &MR{host: h, buf: make([]byte, size)}
}

// recvBuf is a pre-posted RECV.
type recvBuf struct {
	mr   *MR
	off  int
	len  int
	wrid uint64
}

// QP is a queue pair.
type QP struct {
	host      *Host
	qpn       uint32
	transport wire.Transport
	sendCQ    *CQ
	recvCQ    *CQ

	remote *QP // connected transports only

	recvQueue []recvBuf

	// opQueue holds posted work requests in strict FIFO order until
	// their PIO/payload-fetch phase completes and the READ window allows
	// them to issue.
	opQueue []*sendOp

	// outstandingReads counts in-flight READs against ReadWindow.
	outstandingReads int

	// lastDest tracks a DC initiator's current peer; switching peers
	// costs the in-band reconnect.
	lastDest *QP

	// srq, when set, replaces the per-QP receive queue (AttachSRQ).
	srq *SRQ

	// txGate and rxGate preserve per-QP FIFO ordering across context-
	// cache miss stalls: a context fetch stalls this QP's pipeline, so a
	// later verb never overtakes an earlier one on the same QP.
	txGate sim.Time
	rxGate sim.Time

	// RC ordering: ACKed completions pop in post order.
	awaitingAck []pendingAck

	droppedSends uint64 // inbound SENDs discarded for lack of a RECV

	// errored marks the QP as transitioned to the error state: posted
	// WRs flush with Flushed completions, new posts are rejected, and
	// inbound traffic is silently discarded (the peer's NIC would see
	// NAKs or nothing, depending on transport). A crashed process's QPs
	// all end up here; there is no way back — recovery creates fresh
	// queue pairs, as real verbs applications do.
	errored bool

	// qpPosted holds per-QP posted counters when the sink is QP-scoped
	// (Sink.PerQP); nil entries are no-ops.
	qpPosted [ATOMIC + 1]*telemetry.Counter
}

type pendingAck struct {
	wr    SendWR
	bytes int
}

// CreateQP creates a queue pair on transport t with fresh completion
// queues.
func (h *Host) CreateQP(t wire.Transport) *QP {
	h.nextQPN++
	qp := &QP{
		host:      h,
		qpn:       h.nextQPN,
		transport: t,
		sendCQ:    NewCQ(),
		recvCQ:    NewCQ(),
	}
	qp.sendCQ.depth = h.telCQDepth
	qp.recvCQ.depth = h.telCQDepth
	if h.tel.QPScoped() {
		for v := WRITE; v <= ATOMIC; v++ {
			//lint:allow telemnames — per-QP counters verbs.qp.n<node>.q<qpn>.<VERB>.posted are catalogued in docs/OBSERVABILITY.md
			qp.qpPosted[v] = h.tel.Counter(fmt.Sprintf(
				"verbs.qp.n%d.q%d.%s.posted", h.Node(), qp.qpn, v))
		}
	}
	h.qps[qp.qpn] = qp
	return qp
}

// countPost records one posted verb on the host's (and, when QP-scoped,
// this QP's) counters. payload and inline describe the payload path:
// inlined payloads ride the PIO'd WQE, non-inlined ones cost a DMA
// fetch.
func (qp *QP) countPost(v Verb, payloadLen int, inline, signaled bool) {
	h := qp.host
	h.telPosted[v].Inc()
	qp.qpPosted[v].Inc()
	if payloadLen > 0 {
		if inline {
			h.telInline.Inc()
		} else {
			h.telDMA.Inc()
		}
	}
	if signaled {
		h.telSignaled.Inc()
	} else {
		h.telUnsig.Inc()
	}
}

// QPN returns the queue pair number (unique within its host).
func (qp *QP) QPN() uint32 { return qp.qpn }

// Transport returns the QP's transport type.
func (qp *QP) Transport() wire.Transport { return qp.transport }

// SendCQ and RecvCQ return the QP's completion queues.
func (qp *QP) SendCQ() *CQ { return qp.sendCQ }
func (qp *QP) RecvCQ() *CQ { return qp.recvCQ }

// Host returns the owning host.
func (qp *QP) Host() *Host { return qp.host }

// DroppedSends reports inbound SENDs discarded because no RECV was
// posted (possible on UC/UD; see PostRecv).
func (qp *QP) DroppedSends() uint64 { return qp.droppedSends }

// Errored reports whether the QP is in the error state.
func (qp *QP) Errored() bool { return qp.errored }

// SetError transitions the QP to the error state, flushing every
// outstanding work request — queued sends, un-ACKed RC verbs, and posted
// RECVs — to its completion queues with Flushed set. Used by the fault
// injector when the owning process crashes: flushed-in-error completions
// are how real RNICs report work lost to a dead QP.
func (qp *QP) SetError() {
	if qp.errored {
		return
	}
	qp.errored = true
	for _, op := range qp.opQueue {
		qp.sendCQ.push(Completion{
			QPN: qp.qpn, WRID: op.wr.WRID, Verb: op.wr.Verb,
			At: qp.host.eng.Now(), Flushed: true,
		})
	}
	qp.opQueue = nil
	for _, pa := range qp.awaitingAck {
		qp.sendCQ.push(Completion{
			QPN: qp.qpn, WRID: pa.wr.WRID, Verb: pa.wr.Verb,
			At: qp.host.eng.Now(), Flushed: true,
		})
	}
	qp.awaitingAck = nil
	for _, rb := range qp.recvQueue {
		qp.recvCQ.push(Completion{
			QPN: qp.qpn, WRID: rb.wrid, Verb: RECV,
			At: qp.host.eng.Now(), Flushed: true,
		})
	}
	qp.recvQueue = nil
	qp.outstandingReads = 0
}

// Connect pairs two queue pairs on a connected transport. Both ends must
// use the same transport type; UD and DC QPs address their peers
// per-message and cannot be statically connected.
func Connect(a, b *QP) error {
	if a.transport == wire.UD || b.transport == wire.UD ||
		a.transport == wire.DC || b.transport == wire.DC {
		return fmt.Errorf("verbs: cannot connect %v/%v queue pairs: %w",
			a.transport, b.transport, ErrVerbNotSupported)
	}
	if a.transport != b.transport {
		return fmt.Errorf("verbs: transport mismatch %v vs %v", a.transport, b.transport)
	}
	a.remote, b.remote = b, a
	return nil
}

// Remote returns the connected peer, or nil.
func (qp *QP) Remote() *QP { return qp.remote }

// globalKey identifies a QP across the whole fabric for context caching.
func (qp *QP) globalKey() uint64 {
	return uint64(qp.host.Node())<<32 | uint64(qp.qpn)
}

// recvCtxKey is the responder-side context-cache key for inbound traffic
// to this QP. All DC traffic into a host shares one DC target context
// (the transport's scalability property); every other transport keeps
// per-QP receive state.
func (qp *QP) recvCtxKey() uint64 {
	if qp.transport == wire.DC {
		return uint64(qp.host.Node())<<32 | 0x00dc00dc
	}
	return qp.globalKey()
}

// PostRecv posts a receive buffer of length n at mr[off:]. Incoming
// SENDs consume RECVs in FIFO order; a SEND arriving with no RECV posted
// is dropped (UC/UD semantics; our RC model counts it as dropped too
// rather than modeling RNR retries).
func (qp *QP) PostRecv(mr *MR, off, n int, wrid uint64) error {
	if qp.errored {
		return ErrQPState
	}
	if off < 0 || n < 0 || off+n > len(mr.buf) {
		return ErrBounds
	}
	qp.host.telPosted[RECV].Inc()
	qp.qpPosted[RECV].Inc()
	qp.recvQueue = append(qp.recvQueue, recvBuf{mr: mr, off: off, len: n, wrid: wrid})
	return nil
}

// RecvQueueLen reports how many RECVs are currently posted.
func (qp *QP) RecvQueueLen() int { return len(qp.recvQueue) }

// SendWR describes a work request for PostSend.
type SendWR struct {
	WRID uint64
	Verb Verb

	// Data is the payload for WRITE and SEND. It is copied at post time.
	Data []byte

	// Remote locates the target of a WRITE or the source of a READ.
	Remote    *MR
	RemoteOff int

	// Local receives READ results.
	Local    *MR
	LocalOff int
	// Len is the READ length.
	Len int

	// Inline requests payload inlining in the WQE (payloads up to the
	// device's InlineMax; avoids the DMA fetch).
	Inline bool
	// Signaled requests a completion on the send CQ. Unsignaled verbs
	// produce no completion (selective signaling, Section 2.2.2).
	Signaled bool

	// Dest is the destination QP for UD SENDs.
	Dest *QP

	// HasImm turns a WRITE into WRITE-with-immediate: the payload lands
	// at the remote address as usual, AND a RECV is consumed at the
	// responder whose completion carries Imm — RDMA's "write plus
	// doorbell" notification pattern. If no RECV is posted the whole
	// message is dropped (unreliable-transport semantics).
	HasImm bool
	Imm    uint32

	// Trace, when non-nil, records this verb's lifecycle stages (PIO,
	// NIC processing, wire, DMA, completion) as telemetry spans. Leave
	// nil — the default — for zero tracing cost.
	Trace *telemetry.Trace
}
