package verbs

import (
	"bytes"
	"errors"
	"testing"

	"herdkv/internal/nic"
	"herdkv/internal/pcie"
	"herdkv/internal/sim"
	"herdkv/internal/wire"
)

// testbed wires two hosts on a 56 Gbps fabric.
type testbed struct {
	eng  *sim.Engine
	net  *wire.Network
	a, b *Host
}

func newTestbed() *testbed {
	eng := sim.New()
	net := wire.NewNetwork(eng, wire.InfiniBand56(), 1)
	mk := func(node wire.NodeID) *Host {
		bus := pcie.NewBus(eng, pcie.Gen3x8())
		return NewHost(eng, nic.New(eng, nic.ConnectX3(), bus, net, node))
	}
	return &testbed{eng: eng, net: net, a: mk(0), b: mk(1)}
}

func connectedPair(tb *testbed, t wire.Transport) (*QP, *QP) {
	qa := tb.a.CreateQP(t)
	qb := tb.b.CreateQP(t)
	if err := Connect(qa, qb); err != nil {
		panic(err)
	}
	return qa, qb
}

func TestSupportMatrixTable1(t *testing.T) {
	// Table 1: RC supports everything; UC loses READ; UD loses RDMA.
	cases := []struct {
		tr   wire.Transport
		verb Verb
		want bool
	}{
		{wire.RC, SEND, true}, {wire.RC, RECV, true}, {wire.RC, WRITE, true}, {wire.RC, READ, true},
		{wire.UC, SEND, true}, {wire.UC, RECV, true}, {wire.UC, WRITE, true}, {wire.UC, READ, false},
		{wire.UD, SEND, true}, {wire.UD, RECV, true}, {wire.UD, WRITE, false}, {wire.UD, READ, false},
	}
	for _, c := range cases {
		if got := Supports(c.tr, c.verb); got != c.want {
			t.Errorf("Supports(%v, %v) = %v, want %v", c.tr, c.verb, got, c.want)
		}
	}
}

func TestWriteMovesBytes(t *testing.T) {
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(1024)
	data := []byte("hello, remote memory")
	if err := qa.PostSend(SendWR{Verb: WRITE, Data: data, Remote: mr, RemoteOff: 100, Inline: true}); err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if !bytes.Equal(mr.Bytes()[100:100+len(data)], data) {
		t.Fatalf("remote memory = %q", mr.Bytes()[100:100+len(data)])
	}
}

func TestWriteWatcherFires(t *testing.T) {
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(1024)
	var gotOff, gotN int
	fired := 0
	mr.Watch(0, 512, func(off, n int) { fired++; gotOff, gotN = off, n })
	qa.PostSend(SendWR{Verb: WRITE, Data: make([]byte, 64), Remote: mr, RemoteOff: 128, Inline: true})
	qa.PostSend(SendWR{Verb: WRITE, Data: make([]byte, 64), Remote: mr, RemoteOff: 700, Inline: true}) // outside watch
	tb.eng.Run()
	if fired != 1 || gotOff != 128 || gotN != 64 {
		t.Fatalf("watcher fired=%d off=%d n=%d", fired, gotOff, gotN)
	}
}

func TestReadFetchesRemoteBytes(t *testing.T) {
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.RC)
	remote := tb.b.RegisterMR(256)
	copy(remote.Bytes()[32:], []byte("cuckoo bucket contents"))
	local := tb.a.RegisterMR(256)
	err := qa.PostSend(SendWR{Verb: READ, Remote: remote, RemoteOff: 32, Local: local, LocalOff: 0, Len: 22, Signaled: true})
	if err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if got := string(local.Bytes()[:22]); got != "cuckoo bucket contents" {
		t.Fatalf("READ returned %q", got)
	}
	comps := qa.SendCQ().Poll(10)
	if len(comps) != 1 || comps[0].Verb != READ || comps[0].Bytes != 22 {
		t.Fatalf("completions = %+v", comps)
	}
}

func TestSendRecvChannelSemantics(t *testing.T) {
	tb := newTestbed()
	qa, qb := connectedPair(tb, wire.RC)
	buf := tb.b.RegisterMR(1024)
	if err := qb.PostRecv(buf, 64, 128, 77); err != nil {
		t.Fatal(err)
	}
	msg := []byte("request payload")
	if err := qa.PostSend(SendWR{Verb: SEND, Data: msg, Inline: true, Signaled: true}); err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	rc := qb.RecvCQ().Poll(10)
	if len(rc) != 1 {
		t.Fatalf("recv completions = %d, want 1", len(rc))
	}
	if rc[0].WRID != 77 || !bytes.Equal(rc[0].Data, msg) {
		t.Fatalf("recv completion = %+v", rc[0])
	}
	if !bytes.Equal(buf.Bytes()[64:64+len(msg)], msg) {
		t.Fatal("payload not written to the posted RECV buffer")
	}
	sc := qa.SendCQ().Poll(10)
	if len(sc) != 1 || sc[0].Verb != SEND {
		t.Fatalf("send completions = %+v", sc)
	}
}

func TestSendWithoutRecvDropped(t *testing.T) {
	tb := newTestbed()
	qa, qb := connectedPair(tb, wire.UC)
	if err := qa.PostSend(SendWR{Verb: SEND, Data: []byte("nobody home"), Inline: true}); err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if qb.DroppedSends() != 1 {
		t.Fatalf("dropped = %d, want 1", qb.DroppedSends())
	}
	if qb.RecvCQ().Pending() != 0 {
		t.Fatal("unexpected recv completion")
	}
}

func TestUDSendNeedsDest(t *testing.T) {
	tb := newTestbed()
	qp := tb.a.CreateQP(wire.UD)
	err := qp.PostSend(SendWR{Verb: SEND, Data: []byte("x")})
	if !errors.Is(err, ErrNoDestination) {
		t.Fatalf("err = %v, want ErrNoDestination", err)
	}
}

func TestUDOneToMany(t *testing.T) {
	// One UD QP sends to two different receivers — the datagram
	// scalability property (Section 3.3).
	tb := newTestbed()
	src := tb.a.CreateQP(wire.UD)
	r1 := tb.b.CreateQP(wire.UD)
	r2 := tb.b.CreateQP(wire.UD)
	m1, m2 := tb.b.RegisterMR(64), tb.b.RegisterMR(64)
	r1.PostRecv(m1, 0, 64, 1)
	r2.PostRecv(m2, 0, 64, 2)
	src.PostSend(SendWR{Verb: SEND, Data: []byte("to r1"), Dest: r1, Inline: true})
	src.PostSend(SendWR{Verb: SEND, Data: []byte("to r2"), Dest: r2, Inline: true})
	tb.eng.Run()
	if c := r1.RecvCQ().Poll(1); len(c) != 1 || string(c[0].Data) != "to r1" {
		t.Fatalf("r1 completion = %+v", c)
	}
	if c := r2.RecvCQ().Poll(1); len(c) != 1 || string(c[0].Data) != "to r2" {
		t.Fatalf("r2 completion = %+v", c)
	}
}

func TestTransportVerbRejections(t *testing.T) {
	tb := newTestbed()
	quc, _ := connectedPair(tb, wire.UC)
	remote := tb.b.RegisterMR(64)
	local := tb.a.RegisterMR(64)
	if err := quc.PostSend(SendWR{Verb: READ, Remote: remote, Local: local, Len: 8}); !errors.Is(err, ErrVerbNotSupported) {
		t.Fatalf("READ on UC: err = %v", err)
	}
	qud := tb.a.CreateQP(wire.UD)
	dst := tb.b.CreateQP(wire.UD)
	if err := qud.PostSend(SendWR{Verb: WRITE, Data: []byte("x"), Remote: remote, Dest: dst}); !errors.Is(err, ErrVerbNotSupported) {
		t.Fatalf("WRITE on UD: err = %v", err)
	}
	if err := quc.PostSend(SendWR{Verb: RECV}); !errors.Is(err, ErrVerbNotSupported) {
		t.Fatalf("posting RECV via PostSend: err = %v", err)
	}
}

func TestConnectValidation(t *testing.T) {
	tb := newTestbed()
	ud := tb.a.CreateQP(wire.UD)
	uc := tb.b.CreateQP(wire.UC)
	if err := Connect(ud, uc); err == nil {
		t.Fatal("connecting UD QP should fail")
	}
	rc := tb.a.CreateQP(wire.RC)
	if err := Connect(rc, uc); err == nil {
		t.Fatal("connecting mismatched transports should fail")
	}
	if err := uc.PostSend(SendWR{Verb: WRITE, Data: []byte("x"), Remote: tb.a.RegisterMR(8)}); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("unconnected UC WRITE: err = %v", err)
	}
}

func TestInlineLimit(t *testing.T) {
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(1024)
	big := make([]byte, 257)
	err := qa.PostSend(SendWR{Verb: WRITE, Data: big, Remote: mr, Inline: true})
	if !errors.Is(err, ErrInlineTooLarge) {
		t.Fatalf("inline 257 B: err = %v", err)
	}
	if err := qa.PostSend(SendWR{Verb: WRITE, Data: big, Remote: mr}); err != nil {
		t.Fatalf("non-inline 257 B should be fine: %v", err)
	}
}

func TestBoundsChecks(t *testing.T) {
	tb := newTestbed()
	qa, qb := connectedPair(tb, wire.RC)
	mr := tb.b.RegisterMR(64)
	local := tb.a.RegisterMR(64)
	if err := qa.PostSend(SendWR{Verb: WRITE, Data: make([]byte, 65), Remote: mr}); !errors.Is(err, ErrBounds) {
		t.Fatalf("oversized WRITE: %v", err)
	}
	if err := qa.PostSend(SendWR{Verb: READ, Remote: mr, RemoteOff: 60, Len: 8, Local: local}); !errors.Is(err, ErrBounds) {
		t.Fatalf("out-of-range READ: %v", err)
	}
	if err := qb.PostRecv(mr, 60, 8, 0); !errors.Is(err, ErrBounds) {
		t.Fatalf("out-of-range RECV: %v", err)
	}
}

func TestUnsignaledProducesNoCompletion(t *testing.T) {
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(64)
	qa.PostSend(SendWR{Verb: WRITE, Data: []byte("quiet"), Remote: mr, Inline: true})
	tb.eng.Run()
	if qa.SendCQ().Pending() != 0 {
		t.Fatal("unsignaled WRITE produced a completion")
	}
}

func TestRCSignaledCompletesAfterAck(t *testing.T) {
	// RC completion requires the ACK round trip: a signaled RC WRITE must
	// complete later than one full one-way delivery.
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.RC)
	mr := tb.b.RegisterMR(64)
	var done sim.Time
	qa.SendCQ().SetHandler(func(c Completion) { done = c.At })
	qa.PostSend(SendWR{Verb: WRITE, Data: []byte("x"), Remote: mr, Inline: true, Signaled: true})
	tb.eng.Run()
	if done == 0 {
		t.Fatal("no completion")
	}
	if done < sim.Microsecond {
		t.Fatalf("RC completion at %v ns — too fast to include an ACK round trip", done.Nanoseconds())
	}
}

func TestUCSignaledCompletesLocally(t *testing.T) {
	// Unreliable WRITE completes when it hits the wire: far sooner than
	// an RC round trip.
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(64)
	var done sim.Time
	qa.SendCQ().SetHandler(func(c Completion) { done = c.At })
	qa.PostSend(SendWR{Verb: WRITE, Data: []byte("x"), Remote: mr, Inline: true, Signaled: true})
	tb.eng.Run()
	if done == 0 || done > sim.Microsecond {
		t.Fatalf("UC completion at %v ns, want < 1000", done.Nanoseconds())
	}
}

func TestWriteOrderingPerQP(t *testing.T) {
	// UC WRITEs on one QP must land in post order even when an earlier
	// WRITE is non-inlined (slower fetch path).
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(64)
	var order []byte
	mr.Watch(0, 64, func(off, n int) { order = append(order, mr.Bytes()[off]) })
	qa.PostSend(SendWR{Verb: WRITE, Data: []byte{1}, Remote: mr, RemoteOff: 0}) // non-inline
	qa.PostSend(SendWR{Verb: WRITE, Data: []byte{2}, Remote: mr, RemoteOff: 1, Inline: true})
	qa.PostSend(SendWR{Verb: WRITE, Data: []byte{3}, Remote: mr, RemoteOff: 2, Inline: true})
	tb.eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("delivery order = %v, want [1 2 3]", order)
	}
}

func TestReadWindowStalls(t *testing.T) {
	// Post 2x the READ window; all must eventually complete, and the
	// elapsed time must cover at least two round trips (the second batch
	// can only start after the first drains).
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.RC)
	remote := tb.b.RegisterMR(4096)
	local := tb.a.RegisterMR(4096)
	window := tb.a.NIC().Params().ReadWindow
	n := 2 * window
	got := 0
	qa.SendCQ().SetHandler(func(c Completion) { got++ })
	for i := 0; i < n; i++ {
		err := qa.PostSend(SendWR{Verb: READ, Remote: remote, RemoteOff: i * 64, Local: local, LocalOff: i * 64, Len: 64, Signaled: true})
		if err != nil {
			t.Fatal(err)
		}
	}
	tb.eng.Run()
	if got != n {
		t.Fatalf("completions = %d, want %d", got, n)
	}
	if tb.eng.Now() < 2*sim.Microsecond {
		t.Fatalf("finished at %v — window did not throttle", tb.eng.Now())
	}
}

func TestRecvFIFOOrder(t *testing.T) {
	tb := newTestbed()
	qa, qb := connectedPair(tb, wire.RC)
	mr := tb.b.RegisterMR(1024)
	for i := 0; i < 4; i++ {
		qb.PostRecv(mr, i*16, 16, uint64(i))
	}
	for i := 0; i < 4; i++ {
		qa.PostSend(SendWR{Verb: SEND, Data: []byte{byte(i)}, Inline: true})
	}
	tb.eng.Run()
	comps := qb.RecvCQ().Poll(10)
	if len(comps) != 4 {
		t.Fatalf("completions = %d, want 4", len(comps))
	}
	for i, c := range comps {
		if c.WRID != uint64(i) || c.Data[0] != byte(i) {
			t.Fatalf("completion %d = %+v (FIFO violated)", i, c)
		}
	}
}

func TestWriteLatencyBelowReadLatency(t *testing.T) {
	// Figure 2: one-way unsignaled WRITE latency is roughly half of READ
	// latency; a signaled inline RC WRITE is close to READ.
	tbW := newTestbed()
	qw, _ := connectedPair(tbW, wire.UC)
	mrW := tbW.b.RegisterMR(64)
	var writeLanded sim.Time
	mrW.Watch(0, 64, func(int, int) { writeLanded = tbW.eng.Now() })
	qw.PostSend(SendWR{Verb: WRITE, Data: make([]byte, 32), Remote: mrW, Inline: true})
	tbW.eng.Run()

	tbR := newTestbed()
	qr, _ := connectedPair(tbR, wire.RC)
	remote := tbR.b.RegisterMR(64)
	local := tbR.a.RegisterMR(64)
	var readDone sim.Time
	qr.SendCQ().SetHandler(func(c Completion) { readDone = c.At })
	qr.PostSend(SendWR{Verb: READ, Remote: remote, Local: local, Len: 32, Signaled: true})
	tbR.eng.Run()

	if writeLanded == 0 || readDone == 0 {
		t.Fatal("operations did not complete")
	}
	ratio := float64(writeLanded) / float64(readDone)
	if ratio > 0.7 {
		t.Fatalf("one-way WRITE %.0f ns vs READ %.0f ns (ratio %.2f): WRITE should be ~half",
			writeLanded.Nanoseconds(), readDone.Nanoseconds(), ratio)
	}
	if readDone < sim.Microsecond || readDone > 4*sim.Microsecond {
		t.Fatalf("READ latency %.0f ns outside the paper's 1-4 us band", readDone.Nanoseconds())
	}
}

func TestSendTruncatesToRecvBuffer(t *testing.T) {
	tb := newTestbed()
	qa, qb := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(64)
	qb.PostRecv(mr, 0, 4, 0)
	qa.PostSend(SendWR{Verb: SEND, Data: []byte("longer than four"), Inline: true})
	tb.eng.Run()
	comps := qb.RecvCQ().Poll(1)
	if len(comps) != 1 || comps[0].Bytes != 4 || string(comps[0].Data) != "long" {
		t.Fatalf("truncated completion = %+v", comps)
	}
}

func TestPostSendCopiesData(t *testing.T) {
	tb := newTestbed()
	qa, _ := connectedPair(tb, wire.UC)
	mr := tb.b.RegisterMR(64)
	data := []byte("original")
	qa.PostSend(SendWR{Verb: WRITE, Data: data, Remote: mr, Inline: true})
	copy(data, "CLOBBER!")
	tb.eng.Run()
	if got := string(mr.Bytes()[:8]); got != "original" {
		t.Fatalf("remote = %q; PostSend must copy the payload", got)
	}
}

func TestCQPollBatches(t *testing.T) {
	cq := NewCQ()
	for i := 0; i < 5; i++ {
		cq.push(Completion{WRID: uint64(i)})
	}
	first := cq.Poll(3)
	if len(first) != 3 || first[0].WRID != 0 || first[2].WRID != 2 {
		t.Fatalf("first poll = %+v", first)
	}
	rest := cq.Poll(10)
	if len(rest) != 2 || rest[1].WRID != 4 {
		t.Fatalf("second poll = %+v", rest)
	}
	if cq.Poll(1) != nil {
		t.Fatal("empty CQ should return nil")
	}
}

func TestVerbStrings(t *testing.T) {
	if WRITE.String() != "WRITE" || READ.String() != "READ" || SEND.String() != "SEND" || RECV.String() != "RECV" {
		t.Fatal("verb names wrong")
	}
	if Verb(42).String() != "?" {
		t.Fatal("unknown verb should stringify to ?")
	}
}
