package wal

import (
	"testing"

	"herdkv/internal/lint/hotalloc/hotgate"
	"herdkv/internal/sim"
)

// TestHotpathAllocFree gates the //herd:hotpath functions on the
// append path at 0 allocs/op. Append's steady state is batch-not-full
// with the group-commit timer already armed: the pending buffer keeps
// its capacity across flushes (startFlush truncates instead of
// dropping it) and armTimer's closure is paid once per batch, so the
// measured appends never allocate.
func TestHotpathAllocFree(t *testing.T) {
	eng := sim.New()
	cfg := testConfig()
	cfg.FlushBatch = 1 << 20 // the measurement must never trip a batch flush
	l := New(eng, cfg, nil)
	r := rec(7, "durable-value")
	// Warm: grow pending's capacity past everything the gates append
	// and arm the interval timer (the engine never runs, so it stays
	// armed for the whole measurement).
	for i := 0; i < 512; i++ {
		l.Append(r, nil)
	}
	l.pending = l.pending[:0]
	buf := make([]byte, 0, 4*encodedLen(len(r.Value)))
	hotgate.Check(t, ".", map[string]func(){
		"encodedLen":   func() { _ = encodedLen(100) },
		"appendRecord": func() { buf = appendRecord(buf[:0], r) },
		"Log.Append":   func() { l.Append(r, nil) },
		"Log.armTimer": func() { l.armTimer() },
	})
}
