// Package wal is a deterministic, sim-clock-driven write-ahead log for
// a HERD shard: an append-only record stream (Put/Delete with key,
// value and shard epoch) persisted by batched group commit, plus a
// periodic snapshot that compacts the log. It converts the volatile
// MICA partitions into a recoverable store — a crashed shard replays
// snapshot + log tail and rejoins warm instead of cold.
//
// The persist device is modeled the way internal/pcie models DMA: a
// sim.Server resource with a fixed persist latency plus a bandwidth
// term, so flush timing (and therefore sync-mode ack latency) is part
// of the discrete-event simulation and replays byte-identically for a
// given history. The batched group-commit design follows the
// write-optimized NVM log in PAPERS.md: appends buffer in (volatile)
// memory and one device write persists the whole batch when the flush
// interval elapses or the batch threshold fills.
//
// Records are checksummed and length-framed, so a crash that lands
// mid-flush leaves a torn tail the next recovery detects and
// truncates — acknowledged-before-durable writes die with the tail
// (the group-commit window), but replay never applies a damaged
// record. See docs/DURABILITY.md.
package wal

import (
	"encoding/binary"

	"herdkv/internal/kv"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
)

// Op is a logged mutation kind.
type Op byte

// Logged operations.
const (
	OpPut    Op = 1
	OpDelete Op = 2
)

// Record is one logged mutation. At is the virtual append instant;
// Epoch is the shard's crash epoch when the record was appended, so a
// recovering server can restore epoch monotonicity from its log.
type Record struct {
	Op    Op
	Key   kv.Key
	Value []byte
	Epoch int
	At    sim.Time
}

// Record framing:
//
//	[u16 payload length][u8 op][u32 epoch][u64 at][16B key][u16 vlen][value][u32 checksum]
//
// The leading length frames the stream; the trailing checksum (over
// everything after the length) is how replay detects a torn tail: a
// record whose frame runs past the persisted bytes, or whose checksum
// mismatches, truncates the log there.
const (
	recFixed = 1 + 4 + 8 + kv.KeySize + 2 // op + epoch + at + key + vlen
	recSum   = 4
)

// encodedLen returns the full framed size of a record with a vlen-byte
// value.
//
//herd:hotpath
func encodedLen(vlen int) int { return 2 + recFixed + vlen + recSum }

// appendRecord encodes r onto buf. It allocates only when buf's
// capacity runs out, so flush loops reusing a grown buffer are
// allocation-free.
//
//herd:hotpath
func appendRecord(buf []byte, r Record) []byte {
	payload := recFixed + len(r.Value) + recSum
	var hdr [2 + recFixed]byte
	binary.LittleEndian.PutUint16(hdr[0:2], uint16(payload))
	hdr[2] = byte(r.Op)
	binary.LittleEndian.PutUint32(hdr[3:7], uint32(r.Epoch))
	binary.LittleEndian.PutUint64(hdr[7:15], uint64(r.At))
	copy(hdr[15:31], r.Key[:])
	binary.LittleEndian.PutUint16(hdr[31:33], uint16(len(r.Value)))
	start := len(buf)
	buf = append(buf, hdr[:]...)
	buf = append(buf, r.Value...)
	sum := uint32(kv.Checksum64(buf[start+2:]))
	var s [recSum]byte
	binary.LittleEndian.PutUint32(s[:], sum)
	return append(buf, s[:]...)
}

// decodeAll walks an encoded stream and returns the records of its
// longest clean prefix, that prefix's byte length, and how many
// trailing bytes were torn (framed wrong, cut short, or failing the
// checksum).
func decodeAll(buf []byte) (recs []Record, clean int, torn int) {
	off := 0
	for off+2 <= len(buf) {
		payload := int(binary.LittleEndian.Uint16(buf[off : off+2]))
		end := off + 2 + payload
		if payload < recFixed+recSum || end > len(buf) {
			break
		}
		body := buf[off+2 : end-recSum]
		sum := binary.LittleEndian.Uint32(buf[end-recSum : end])
		if uint32(kv.Checksum64(body)) != sum {
			break
		}
		vlen := int(binary.LittleEndian.Uint16(body[recFixed-2 : recFixed]))
		if vlen != payload-recFixed-recSum {
			break
		}
		var r Record
		r.Op = Op(body[0])
		r.Epoch = int(binary.LittleEndian.Uint32(body[1:5]))
		r.At = sim.Time(binary.LittleEndian.Uint64(body[5:13]))
		copy(r.Key[:], body[13:13+kv.KeySize])
		if vlen > 0 {
			r.Value = append([]byte(nil), body[recFixed:recFixed+vlen]...)
		}
		recs = append(recs, r)
		off = end
	}
	return recs, off, len(buf) - off
}

// Config parameterizes the log's group commit and persist device.
// Zero values take the defaults below (an NVM-class device).
type Config struct {
	// FlushInterval is the group-commit window: a pending append is
	// persisted at most this long after it buffers (default 5us).
	FlushInterval sim.Time
	// FlushBatch persists early once this many records are pending
	// (default 64).
	FlushBatch int
	// PersistLatency is the fixed per-flush device latency — the NVM
	// write-and-fence cost paid once per group commit (default 1us).
	PersistLatency sim.Time
	// BytesPerSec is the device's sequential write (and recovery read)
	// bandwidth (default 2 GB/s).
	BytesPerSec float64
	// SnapshotEvery triggers snapshot compaction after this many bytes
	// of durable log growth (default 1 MiB; negative disables).
	SnapshotEvery int
	// ReplayApply is the CPU cost of re-applying one record into the
	// MICA partitions during recovery (default 20ns).
	ReplayApply sim.Time
}

func (c Config) withDefaults() Config {
	if c.FlushInterval <= 0 {
		c.FlushInterval = 5 * sim.Microsecond
	}
	if c.FlushBatch <= 0 {
		c.FlushBatch = 64
	}
	if c.PersistLatency <= 0 {
		c.PersistLatency = 1 * sim.Microsecond
	}
	if c.BytesPerSec <= 0 {
		c.BytesPerSec = 2e9
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 1 << 20
	}
	if c.ReplayApply <= 0 {
		c.ReplayApply = 20 * sim.Nanosecond
	}
	return c
}

// pendingRec is one buffered append awaiting group commit.
type pendingRec struct {
	rec       Record
	onDurable func()
}

// flight is one device write in progress.
type flight struct {
	buf    []byte
	cbs    []func()
	start  sim.Time
	dur    sim.Time
	lastAt sim.Time // append instant of the batch's final record
}

// RecoverStats summarizes one completed replay.
type RecoverStats struct {
	// Records is how many log-tail records were applied.
	Records int
	// SnapshotRecords is how many snapshot entries were applied first.
	SnapshotRecords int
	// TornBytes is how much torn tail this recovery truncated.
	TornBytes int
	// MaxEpoch is the largest epoch seen across applied records (-1
	// when the log was empty).
	MaxEpoch int
	// Since is the instant from which the log may be missing records:
	// the last durable record's append time minus a group-commit
	// guard. A replica-delta catch-up from this instant covers every
	// write the torn/unflushed tail lost.
	Since sim.Time
}

// Log is one shard's write-ahead log. Like every model component it is
// single-goroutine, driven entirely by the sim clock.
type Log struct {
	clk sim.Clock
	cfg Config
	dev *sim.Server

	pending    []pendingRec
	durable    []byte
	snapshot   []byte
	snapBase   int // len(durable) right after the last compaction
	lastDurAt  sim.Time
	inflight   *flight
	snapInProg bool
	timerArmed bool
	flushDue   bool // interval elapsed while the device was busy
	maxEpoch   int
	source     func(emit func(key kv.Key, value []byte))

	// gen cancels scheduled completions across a crash: timers and
	// device callbacks captured under an older generation are dead.
	gen     int
	crashed bool

	appends, flushes, replayed uint64
	flushedBytes, tornBytes    uint64
	snapshotBytes, snapshots   uint64

	telAppends, telFlushes   *telemetry.Counter
	telReplayed, telSnapshot *telemetry.Counter
	telTorn                  *telemetry.Counter
}

// New returns an empty log on eng. tel may be nil.
func New(eng *sim.Engine, cfg Config, tel *telemetry.Sink) *Log {
	l := &Log{clk: eng, cfg: cfg.withDefaults(), maxEpoch: -1}
	l.dev = sim.NewServer(eng, 1)
	l.telAppends = tel.Counter("wal.appends")
	l.telFlushes = tel.Counter("wal.flushes")
	l.telReplayed = tel.Counter("wal.replayed")
	l.telSnapshot = tel.Counter("wal.snapshot.bytes")
	l.telTorn = tel.Counter("wal.torn.bytes")
	return l
}

// SetSnapshotSource registers the live-state walker snapshot
// compaction captures — in practice a loop over the shard's
// mica.Cache.Range partitions. Without a source, compaction is off.
func (l *Log) SetSnapshotSource(fn func(emit func(key kv.Key, value []byte))) {
	l.source = fn
}

// xfer returns the device time for n sequential bytes.
func (l *Log) xfer(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.Time(float64(n) / l.cfg.BytesPerSec * float64(sim.Second))
}

// Append buffers one record for the next group commit. onDurable, if
// non-nil, runs when the record's batch has persisted — the log-
// before-ack hook for sync durability. Appends on a crashed log are
// dropped (the process is dead; nothing should be calling). The
// steady-state path (batch not yet full, timer already armed) is
// allocation-free: the pending buffer keeps its capacity across
// flushes.
//
//herd:hotpath
func (l *Log) Append(r Record, onDurable func()) {
	if l.crashed {
		return
	}
	r.At = l.clk.Now()
	if r.Epoch > l.maxEpoch {
		l.maxEpoch = r.Epoch
	}
	l.appends++
	l.telAppends.Inc()
	l.pending = append(l.pending, pendingRec{rec: r, onDurable: onDurable})
	if len(l.pending) >= l.cfg.FlushBatch {
		l.kick() //lint:allow hotalloc — group-commit flush, amortized once per batch
		return
	}
	l.armTimer()
}

// AppendDurable logs one record as immediately durable, bypassing
// group commit and the persist device. This is the control-plane path
// for Server.Preload: preloaded state models data loaded before the
// run starts, so it must be in the log from instant zero — otherwise a
// crash before the first flush would replay to a pre-preload view.
func (l *Log) AppendDurable(r Record) {
	if l.crashed {
		return
	}
	r.At = l.clk.Now()
	if r.Epoch > l.maxEpoch {
		l.maxEpoch = r.Epoch
	}
	l.appends++
	l.telAppends.Inc()
	l.durable = appendRecord(l.durable, r)
	l.lastDurAt = r.At
}

// Flush forces a group commit of everything pending now (sync
// durability calls this after every append; batches still form while
// the device is busy with the previous commit).
func (l *Log) Flush() {
	if l.crashed {
		return
	}
	l.kick()
}

// armTimer schedules the group-commit interval flush once per batch;
// with the timer already armed it is a no-op, so only one append per
// batch pays for the timer closure.
//
//herd:hotpath
func (l *Log) armTimer() {
	if l.timerArmed {
		return
	}
	l.timerArmed = true
	gen := l.gen
	//lint:allow hotalloc — timer closure armed once per group-commit batch
	l.clk.After(l.cfg.FlushInterval, func() {
		if gen != l.gen {
			return
		}
		l.timerArmed = false
		l.kick()
	})
}

// kick starts a flush if the device is free; otherwise marks one due
// for when the in-progress write completes.
func (l *Log) kick() {
	if len(l.pending) == 0 {
		return
	}
	if l.inflight != nil || l.snapInProg {
		l.flushDue = true
		return
	}
	l.startFlush()
}

// startFlush begins persisting the whole pending batch: one device
// write of the batch's encoded bytes (bandwidth term) plus the fixed
// persist latency. The batch becomes durable — and sync-mode acks
// fire — only at completion; a crash first persists a byte prefix
// proportional to elapsed time, leaving a torn tail.
func (l *Log) startFlush() {
	var buf []byte
	var cbs []func()
	var lastAt sim.Time
	for _, p := range l.pending {
		buf = appendRecord(buf, p.rec)
		if p.onDurable != nil {
			cbs = append(cbs, p.onDurable)
		}
		lastAt = p.rec.At
	}
	// Keep the buffer's capacity: every record was encoded into buf and
	// the callbacks captured, so the entries are dead and the next batch
	// of appends reuses the space allocation-free.
	l.pending = l.pending[:0]
	dur := l.xfer(len(buf)) + l.cfg.PersistLatency
	fl := &flight{buf: buf, cbs: cbs, start: l.clk.Now(), dur: dur, lastAt: lastAt}
	l.inflight = fl
	gen := l.gen
	l.dev.Submit(dur, func(sim.Time) {
		if gen != l.gen {
			return
		}
		l.commitFlush(fl)
	})
}

// commitFlush lands one completed device write: the batch is durable,
// its ack callbacks fire, and a snapshot or follow-on flush may start.
func (l *Log) commitFlush(fl *flight) {
	l.inflight = nil
	l.durable = append(l.durable, fl.buf...)
	l.lastDurAt = fl.lastAt
	l.flushes++
	l.flushedBytes += uint64(len(fl.buf))
	l.telFlushes.Inc()
	for _, cb := range fl.cbs {
		cb()
	}
	l.maybeSnapshot()
	if l.flushDue || len(l.pending) >= l.cfg.FlushBatch {
		l.flushDue = false
		l.kick()
	} else if len(l.pending) > 0 {
		l.armTimer()
	}
}

// maybeSnapshot starts a compaction when the durable log has grown
// past the threshold: the live state (via the snapshot source) is
// persisted as a fresh snapshot, and on completion the log truncates
// every record the snapshot already covers. A crash mid-snapshot
// cancels it cleanly — the swap is atomic at completion, so recovery
// always sees either the old (snapshot, log) pair or the new one.
func (l *Log) maybeSnapshot() {
	if l.cfg.SnapshotEvery <= 0 || l.source == nil || l.snapInProg || l.inflight != nil {
		return
	}
	if len(l.durable)-l.snapBase < l.cfg.SnapshotEvery {
		return
	}
	takenAt := l.clk.Now()
	epoch := l.maxEpoch
	if epoch < 0 {
		epoch = 0
	}
	var buf []byte
	l.source(func(key kv.Key, value []byte) {
		buf = appendRecord(buf, Record{Op: OpPut, Key: key, Value: value, Epoch: epoch, At: takenAt})
	})
	l.snapInProg = true
	gen := l.gen
	dur := l.xfer(len(buf)) + l.cfg.PersistLatency
	l.dev.Submit(dur, func(sim.Time) {
		if gen != l.gen {
			return
		}
		l.snapInProg = false
		l.snapshot = buf
		l.snapshots++
		l.snapshotBytes += uint64(len(buf))
		l.telSnapshot.Add(uint64(len(buf)))
		// Drop every durable record the snapshot covers. Records
		// appended after takenAt (flushed while the snapshot was
		// persisting, or pending then) survive as the new tail; replay
		// order (snapshot, then tail) keeps last-writer-wins intact.
		recs, _, _ := decodeAll(l.durable)
		var tail []byte
		for _, r := range recs {
			if r.At > takenAt {
				tail = appendRecord(tail, r)
			}
		}
		l.durable = tail
		l.snapBase = len(tail)
		if l.flushDue || len(l.pending) >= l.cfg.FlushBatch {
			l.flushDue = false
			l.kick()
		}
	})
}

// Crash models power loss: pending (unflushed) records vanish, and a
// flush caught mid-write persists only the byte prefix the device had
// completed — elapsed/duration of the batch — leaving a torn tail for
// recovery to truncate. The durable bytes and snapshot survive (they
// model the NVM/SSD device, not DRAM).
func (l *Log) Crash() {
	l.crashAt(-1)
}

// CrashTorn models the worst-case mid-group-commit power loss: the
// crash lands between append and flush completion, cutting the device
// write strictly inside the batch's final record. If no flush is in
// flight it force-starts one over the pending batch first, so a
// "flushcrash" fault event always produces a torn tail to truncate
// (provided anything was pending).
func (l *Log) CrashTorn() {
	if l.crashed {
		return
	}
	if l.inflight == nil && len(l.pending) > 0 && !l.snapInProg {
		l.startFlush()
	}
	cut := -1
	if fl := l.inflight; fl != nil {
		recs, _, _ := decodeAll(fl.buf)
		if n := len(recs); n > 0 {
			last := encodedLen(len(recs[n-1].Value))
			cut = len(fl.buf) - last + last/2
		}
	}
	l.crashAt(cut)
}

// crashAt is the shared crash path. cut >= 0 overrides the persisted
// prefix of an in-flight flush (CrashTorn); cut < 0 derives it from
// elapsed device time.
func (l *Log) crashAt(cut int) {
	if l.crashed {
		return
	}
	l.crashed = true
	l.gen++
	l.timerArmed = false
	l.flushDue = false
	l.snapInProg = false
	l.pending = nil
	if fl := l.inflight; fl != nil {
		n := cut
		if n < 0 {
			elapsed := l.clk.Now() - fl.start
			if fl.dur > 0 {
				n = int(float64(len(fl.buf)) * float64(elapsed) / float64(fl.dur))
			}
		}
		if n > len(fl.buf) {
			n = len(fl.buf)
		}
		if n > 0 {
			l.durable = append(l.durable, fl.buf[:n]...)
		}
		l.inflight = nil
	}
}

// Recover replays the log after a crash: the device reads snapshot +
// log (bandwidth plus one persist latency as the mount cost), the torn
// tail is truncated, and apply runs per surviving record — snapshot
// entries first, then the log tail in append order. done fires when
// replay completes, after which the log accepts appends again. The
// whole sequence is one scheduled event chain on the sim clock, so a
// recovering server stays down for a duration the experiment can
// measure.
func (l *Log) Recover(apply func(Record), done func(RecoverStats)) {
	readBytes := len(l.snapshot) + len(l.durable)
	snapRecs, _, _ := decodeAll(l.snapshot)
	logRecs, clean, torn := decodeAll(l.durable)
	l.durable = l.durable[:clean]
	l.snapBase = clean
	if torn > 0 {
		l.tornBytes += uint64(torn)
		l.telTorn.Add(uint64(torn))
	}
	cost := l.xfer(readBytes) + l.cfg.PersistLatency +
		sim.Time(len(snapRecs)+len(logRecs))*l.cfg.ReplayApply
	gen := l.gen
	l.dev.Submit(cost, func(sim.Time) {
		if gen != l.gen {
			return
		}
		maxEpoch := -1
		for _, r := range snapRecs {
			if r.Epoch > maxEpoch {
				maxEpoch = r.Epoch
			}
			apply(r)
		}
		for _, r := range logRecs {
			if r.Epoch > maxEpoch {
				maxEpoch = r.Epoch
			}
			apply(r)
		}
		n := len(snapRecs) + len(logRecs)
		l.replayed += uint64(n)
		l.telReplayed.Add(uint64(n))
		l.crashed = false
		since := l.lastDurAt - 2*l.cfg.FlushInterval
		if since < 0 {
			since = 0
		}
		done(RecoverStats{
			Records:         len(logRecs),
			SnapshotRecords: len(snapRecs),
			TornBytes:       torn,
			MaxEpoch:        maxEpoch,
			Since:           since,
		})
	})
}

// RecordsSince returns every record (durable and pending) appended at
// or after t, in append order — the replica-side source for a fleet
// delta catch-up: a rejoining peer replays its own log, then asks
// survivors for the writes its lost tail may have missed.
func (l *Log) RecordsSince(t sim.Time) []Record {
	recs, _, _ := decodeAll(l.durable)
	var out []Record
	for _, r := range recs {
		if r.At >= t {
			out = append(out, r)
		}
	}
	if fl := l.inflight; fl != nil {
		frecs, _, _ := decodeAll(fl.buf)
		for _, r := range frecs {
			if r.At >= t {
				out = append(out, r)
			}
		}
	}
	for _, p := range l.pending {
		if p.rec.At >= t {
			out = append(out, p.rec)
		}
	}
	return out
}

// LastDurableAt returns the append instant of the newest durable
// record (zero for an empty log).
func (l *Log) LastDurableAt() sim.Time { return l.lastDurAt }

// Pending reports how many appends await group commit (including an
// in-flight flush).
func (l *Log) Pending() int {
	n := len(l.pending)
	if fl := l.inflight; fl != nil {
		recs, _, _ := decodeAll(fl.buf)
		n += len(recs)
	}
	return n
}

// DurableBytes reports the current durable log size (post-compaction
// tail only).
func (l *Log) DurableBytes() int { return len(l.durable) }

// SnapshotLen reports the current snapshot size in bytes.
func (l *Log) SnapshotLen() int { return len(l.snapshot) }

// Stats snapshot accessors.

// Appends reports total records appended (durable-path included).
func (l *Log) Appends() uint64 { return l.appends }

// Flushes reports completed group commits.
func (l *Log) Flushes() uint64 { return l.flushes }

// Replayed reports records applied across all recoveries.
func (l *Log) Replayed() uint64 { return l.replayed }

// TornBytes reports bytes truncated as torn tails across recoveries.
func (l *Log) TornBytes() uint64 { return l.tornBytes }

// Snapshots reports completed compactions.
func (l *Log) Snapshots() uint64 { return l.snapshots }

// SnapshotBytes reports total bytes written as snapshots.
func (l *Log) SnapshotBytes() uint64 { return l.snapshotBytes }

// Utilization reports the persist device's busy fraction so far.
func (l *Log) Utilization() float64 { return l.dev.Utilization() }
