package wal

import (
	"bytes"
	"fmt"
	"testing"

	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

func testConfig() Config {
	return Config{
		FlushInterval:  5 * sim.Microsecond,
		FlushBatch:     4,
		PersistLatency: 1 * sim.Microsecond,
		BytesPerSec:    2e9,
		SnapshotEvery:  -1, // off unless a test opts in
	}
}

func rec(n uint64, v string) Record {
	return Record{Op: OpPut, Key: kv.FromUint64(n), Value: []byte(v)}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf []byte
	want := []Record{
		{Op: OpPut, Key: kv.FromUint64(1), Value: []byte("hello"), Epoch: 3, At: 17 * sim.Microsecond},
		{Op: OpDelete, Key: kv.FromUint64(2), Epoch: 4, At: 18 * sim.Microsecond},
		{Op: OpPut, Key: kv.FromUint64(3), Value: nil, Epoch: 4, At: 19 * sim.Microsecond},
	}
	for _, r := range want {
		buf = appendRecord(buf, r)
	}
	got, clean, torn := decodeAll(buf)
	if clean != len(buf) || torn != 0 {
		t.Fatalf("clean=%d torn=%d, want %d/0", clean, torn, len(buf))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Key != want[i].Key ||
			got[i].Epoch != want[i].Epoch || got[i].At != want[i].At ||
			!bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDecodeTruncatesTornTail(t *testing.T) {
	var buf []byte
	buf = appendRecord(buf, rec(1, "aa"))
	whole := len(buf)
	buf = appendRecord(buf, rec(2, "bb"))
	for _, cut := range []int{whole + 1, whole + 10, len(buf) - 1} {
		got, clean, torn := decodeAll(buf[:cut])
		if len(got) != 1 || clean != whole || torn != cut-whole {
			t.Fatalf("cut=%d: records=%d clean=%d torn=%d, want 1/%d/%d",
				cut, len(got), clean, torn, whole, cut-whole)
		}
	}
	// A flipped byte inside a record fails its checksum and truncates
	// the stream at that record.
	damaged := append([]byte(nil), buf...)
	damaged[whole+5] ^= 0x5a
	got, clean, _ := decodeAll(damaged)
	if len(got) != 1 || clean != whole {
		t.Fatalf("corrupt record not truncated: records=%d clean=%d", len(got), clean)
	}
}

func TestGroupCommitFlushesOnInterval(t *testing.T) {
	eng := sim.New()
	l := New(eng, testConfig(), nil)
	durableAt := sim.Time(-1)
	l.Append(rec(1, "v"), func() { durableAt = eng.Now() })
	eng.Run()
	if l.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1", l.Flushes())
	}
	// One record buffers for the 5us interval, then pays the device
	// write: bandwidth + 1us persist latency.
	min := 6 * sim.Microsecond
	if durableAt < min || durableAt > min+sim.Microsecond {
		t.Fatalf("durable at %v, want within [%v, %v]", durableAt, min, min+sim.Microsecond)
	}
}

func TestGroupCommitFlushesOnBatchThreshold(t *testing.T) {
	eng := sim.New()
	l := New(eng, testConfig(), nil)
	calls := 0
	for i := 0; i < 4; i++ { // FlushBatch = 4: fills without the timer
		l.Append(rec(uint64(i+1), "v"), func() { calls++ })
	}
	eng.RunUntil(3 * sim.Microsecond) // < FlushInterval
	if l.Flushes() != 1 || calls != 4 {
		t.Fatalf("flushes=%d acks=%d before the interval, want 1/4", l.Flushes(), calls)
	}
}

func TestCrashDropsPendingAndKeepsDurable(t *testing.T) {
	eng := sim.New()
	l := New(eng, testConfig(), nil)
	l.Append(rec(1, "durable"), nil)
	l.Flush()
	eng.Run() // first record fully persisted
	l.Append(rec(2, "lost"), nil)
	acked := false
	l.Append(rec(3, "lost-too"), func() { acked = true })
	l.Crash()
	eng.Run()
	if acked {
		t.Fatal("ack fired for a record lost in the crash")
	}
	var got []Record
	l.Recover(func(r Record) { got = append(got, r) }, func(RecoverStats) {})
	eng.Run()
	if len(got) != 1 || got[0].Key != kv.FromUint64(1) {
		t.Fatalf("replayed %d records (%v), want just the durable one", len(got), got)
	}
}

func TestCrashMidFlushLeavesTornTailTruncatedOnRecover(t *testing.T) {
	eng := sim.New()
	l := New(eng, testConfig(), nil)
	l.Append(rec(1, "first"), nil)
	l.Append(rec(2, "second"), nil)
	l.Flush()
	// The flush is in flight; crash halfway through the device write.
	var stats RecoverStats
	var got []Record
	eng.After(l.cfg.PersistLatency/2, func() {
		l.Crash()
		l.Recover(func(r Record) { got = append(got, r) },
			func(s RecoverStats) { stats = s })
	})
	eng.Run()
	if stats.TornBytes == 0 {
		t.Fatal("mid-flush crash left no torn tail")
	}
	if l.TornBytes() == 0 {
		t.Fatal("torn bytes not counted")
	}
	for _, r := range got {
		if r.Key != kv.FromUint64(1) && r.Key != kv.FromUint64(2) {
			t.Fatalf("replayed an invented record: %+v", r)
		}
	}
}

func TestCrashTornForcesTornTail(t *testing.T) {
	eng := sim.New()
	l := New(eng, testConfig(), nil)
	l.Append(rec(1, "aaaa"), nil)
	l.Append(rec(2, "bbbb"), nil)
	// No flush in flight: CrashTorn must still model the power failure
	// landing mid-group-commit and cut inside the final record.
	l.CrashTorn()
	var stats RecoverStats
	var got []Record
	l.Recover(func(r Record) { got = append(got, r) }, func(s RecoverStats) { stats = s })
	eng.Run()
	if stats.TornBytes == 0 {
		t.Fatal("CrashTorn produced no torn tail")
	}
	if len(got) != 1 || got[0].Key != kv.FromUint64(1) {
		t.Fatalf("replay = %+v, want exactly the first record", got)
	}
}

func TestAppendDurableSurvivesImmediateCrash(t *testing.T) {
	eng := sim.New()
	l := New(eng, testConfig(), nil)
	l.AppendDurable(rec(7, "preloaded"))
	l.Crash() // before any flush could have run
	var got []Record
	l.Recover(func(r Record) { got = append(got, r) }, func(RecoverStats) {})
	eng.Run()
	if len(got) != 1 || got[0].Key != kv.FromUint64(7) || string(got[0].Value) != "preloaded" {
		t.Fatalf("replay = %+v, want the preloaded record", got)
	}
}

func TestRecoveryTakesDeviceTime(t *testing.T) {
	eng := sim.New()
	l := New(eng, testConfig(), nil)
	for i := 0; i < 64; i++ {
		l.AppendDurable(rec(uint64(i+1), "0123456789abcdef"))
	}
	l.Crash()
	var doneAt sim.Time
	l.Recover(func(Record) {}, func(RecoverStats) { doneAt = eng.Now() })
	eng.Run()
	if doneAt <= l.cfg.PersistLatency {
		t.Fatalf("recovery completed at %v — replay cost not modeled", doneAt)
	}
}

func TestSnapshotCompactsLog(t *testing.T) {
	eng := sim.New()
	cfg := testConfig()
	cfg.SnapshotEvery = 512
	l := New(eng, cfg, nil)
	// Live state: the last write per key wins; the source serves the
	// current value only.
	live := map[kv.Key][]byte{}
	l.SetSnapshotSource(func(emit func(kv.Key, []byte)) {
		for i := uint64(1); i <= 8; i++ { // deterministic order, no map walk
			k := kv.FromUint64(i)
			if v, ok := live[k]; ok {
				emit(k, v)
			}
		}
	})
	put := func(n uint64, v string) {
		k := kv.FromUint64(n)
		live[k] = []byte(v)
		l.Append(Record{Op: OpPut, Key: k, Value: []byte(v)}, nil)
	}
	for round := 0; round < 8; round++ {
		for i := uint64(1); i <= 8; i++ {
			put(i, fmt.Sprintf("round-%d", round))
		}
		l.Flush()
		eng.Run()
	}
	if l.Snapshots() == 0 {
		t.Fatal("no compaction despite durable growth past the threshold")
	}
	if l.DurableBytes() >= 8*64*8 {
		t.Fatalf("durable log not compacted: %d bytes", l.DurableBytes())
	}
	// Recovery through the snapshot yields the latest value per key.
	l.Crash()
	got := map[kv.Key]string{}
	l.Recover(func(r Record) {
		if r.Op == OpPut {
			got[r.Key] = string(r.Value)
		}
	}, func(RecoverStats) {})
	eng.Run()
	for i := uint64(1); i <= 8; i++ {
		if got[kv.FromUint64(i)] != "round-7" {
			t.Fatalf("key %d recovered %q, want round-7", i, got[kv.FromUint64(i)])
		}
	}
}

func TestRecordsSinceCoversPendingAndDurable(t *testing.T) {
	eng := sim.New()
	l := New(eng, testConfig(), nil)
	l.Append(rec(1, "old"), nil)
	l.Flush()
	eng.Run()
	cut := eng.Now()
	eng.After(sim.Microsecond, func() {
		l.Append(rec(2, "durable-after"), nil)
		l.Flush()
	})
	eng.Run()
	eng.After(sim.Microsecond, func() {
		l.Append(rec(3, "still-pending"), nil)
	})
	eng.RunUntil(eng.Now() + sim.Microsecond + sim.Nanosecond)
	got := l.RecordsSince(cut + 1)
	if len(got) != 2 || got[0].Key != kv.FromUint64(2) || got[1].Key != kv.FromUint64(3) {
		t.Fatalf("RecordsSince = %+v, want records 2 and 3", got)
	}
}

func TestEpochRestoredFromLog(t *testing.T) {
	eng := sim.New()
	l := New(eng, testConfig(), nil)
	l.Append(Record{Op: OpPut, Key: kv.FromUint64(1), Value: []byte("v"), Epoch: 5}, nil)
	l.Flush()
	eng.Run()
	l.Crash()
	var stats RecoverStats
	l.Recover(func(Record) {}, func(s RecoverStats) { stats = s })
	eng.Run()
	if stats.MaxEpoch != 5 {
		t.Fatalf("MaxEpoch = %d, want 5", stats.MaxEpoch)
	}
}

func TestReplayIsByteDeterministic(t *testing.T) {
	run := func() []byte {
		eng := sim.New()
		l := New(eng, testConfig(), nil)
		for i := 0; i < 32; i++ {
			l.Append(rec(uint64(i%7+1), fmt.Sprintf("v%d", i)), nil)
			if i%5 == 0 {
				l.Flush()
			}
		}
		eng.After(2*sim.Microsecond, func() { l.CrashTorn() })
		eng.Run()
		var out []byte
		l.Recover(func(r Record) { out = appendRecord(out, r) }, func(RecoverStats) {})
		eng.Run()
		return out
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical histories replayed differently")
	}
}
