package wire

import (
	"testing"

	"herdkv/internal/sim"
)

func TestDCHeaderAndString(t *testing.T) {
	p := InfiniBand56()
	if p.Header(DC) != p.HdrRC+12 {
		t.Fatalf("DC header = %d, want RC+12", p.Header(DC))
	}
	if DC.String() != "DC" {
		t.Fatal("DC name")
	}
}

func TestNetworkParamsAndSetLossRate(t *testing.T) {
	eng := sim.New()
	n := NewNetwork(eng, InfiniBand56(), 1)
	if n.Params().Gbps != 56 {
		t.Fatal("Params accessor")
	}
	n.AddNode(0)
	n.AddNode(1)
	n.SetLossRate(1.0)
	delivered := false
	n.Send(0, 1, UC, 8, func(sim.Time) { delivered = true })
	eng.Run()
	if delivered {
		t.Fatal("packet survived 100% loss")
	}
	n.SetLossRate(0)
	n.Send(0, 1, UC, 8, func(sim.Time) { delivered = true })
	eng.Run()
	if !delivered {
		t.Fatal("packet lost after healing")
	}
}

func TestUtilizationAccessors(t *testing.T) {
	eng := sim.New()
	n := NewNetwork(eng, InfiniBand56(), 1)
	n.AddNode(0)
	n.AddNode(1)
	for i := 0; i < 100; i++ {
		n.Send(0, 1, UC, 1024, nil)
	}
	eng.Run()
	if n.EgressUtilization(0) <= 0 {
		t.Fatal("egress utilization should be positive")
	}
	if n.IngressUtilization(1) <= 0 {
		t.Fatal("ingress utilization should be positive")
	}
	if n.IngressUtilization(0) != 0 {
		t.Fatal("node 0 received nothing")
	}
}

func TestMTUSegmentation(t *testing.T) {
	eng := sim.New()
	p := InfiniBand56()
	p.MTU = 1024
	n := NewNetwork(eng, p, 1)
	n.AddNode(0)
	n.AddNode(1)
	// A 6 KB message must segment: total wire time exceeds a single
	// unsegmented serialization by the extra headers.
	var bigAt sim.Time
	n.SendWire(0, 1, 6000, func(end sim.Time) { bigAt = end })
	eng.Run()
	if bigAt == 0 {
		t.Fatal("segmented message not delivered")
	}
	segments := 0
	for rest := 6000; rest > 1024+p.HdrUC; rest = rest - (1024 + p.HdrUC) + p.HdrUC {
		segments++
	}
	if n.Sent() != uint64(segments+1) {
		t.Fatalf("sent %d packets, want %d", n.Sent(), segments+1)
	}
	// Small messages stay single-packet.
	before := n.Sent()
	n.SendWire(0, 1, 512, nil)
	eng.Run()
	if n.Sent() != before+1 {
		t.Fatal("small message segmented")
	}
}

func TestMTUSegmentLossSuppressesDelivery(t *testing.T) {
	eng := sim.New()
	p := InfiniBand56()
	p.MTU = 256
	p.LossRate = 0.5
	n := NewNetwork(eng, p, 3)
	n.AddNode(0)
	n.AddNode(1)
	delivered, attempts := 0, 200
	for i := 0; i < attempts; i++ {
		n.SendWire(0, 1, 2000, func(sim.Time) { delivered++ })
	}
	eng.Run()
	// ~8 segments each at 50% loss: essentially none should deliver
	// whole, and definitely none may deliver despite a dropped segment.
	if n.Dropped() == 0 {
		t.Fatal("no drops at 50% loss")
	}
	if delivered > attempts/10 {
		t.Fatalf("delivered %d/%d multi-segment messages at 50%% loss", delivered, attempts)
	}
}
