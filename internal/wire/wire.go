// Package wire models the switched lossless fabric connecting hosts:
// per-node full-duplex links with serialization delay, a propagation +
// switching delay, and per-transport header overheads.
//
// InfiniBand and RoCE employ credit-based / priority flow control, so
// packets are never lost to congestion (Section 2.2.3); the only loss
// source is faults. Two fault mechanisms exist: the uniform bit-error
// Params.LossRate, and a per-packet fault hook (SetFaultHook) through
// which internal/fault injects link blackouts, asymmetric partitions,
// degradation windows and corruption bursts. Both feed one decision
// point (fate) so every packet answers to the same policy.
package wire

import "herdkv/internal/sim"

// Params describes the fabric.
type Params struct {
	// Gbps is each link's signaling rate in gigabits per second of
	// payload-carrying capacity.
	Gbps float64
	// PropDelay is the one-way propagation plus switch traversal delay.
	PropDelay sim.Time
	// HdrRC, HdrUC and HdrUD are per-packet header bytes by transport.
	// UD packets carry a larger header (the paper notes SEND-UD's
	// throughput drops at smaller payloads than WRITE's because of it).
	HdrRC, HdrUC, HdrUD int
	// HdrAck is the size of an RC acknowledgement packet.
	HdrAck int
	// MTU is the maximum payload per packet.
	MTU int
	// LossRate is the probability a packet is dropped (bit error).
	// Zero in all performance experiments; nonzero only in failure
	// injection tests.
	LossRate float64
}

// InfiniBand56 returns parameters for the Apt cluster's 56 Gbps FDR
// InfiniBand fabric.
func InfiniBand56() Params {
	return Params{
		Gbps:      56,
		PropDelay: sim.NS(450),
		HdrRC:     36,
		HdrUC:     36,
		HdrUD:     68,
		HdrAck:    30,
		MTU:       4096,
	}
}

// RoCE40 returns parameters for the Susitna cluster's 40 Gbps RoCE
// fabric.
func RoCE40() Params {
	return Params{
		Gbps:      40,
		PropDelay: sim.NS(550),
		HdrRC:     58, // RoCE adds Ethernet + GRH framing
		HdrUC:     58,
		HdrUD:     90,
		HdrAck:    52,
		MTU:       4096,
	}
}

// Transport identifies the RDMA transport a packet travels on.
type Transport int

// Transport types (Section 2.2.3), plus the Dynamically Connected
// transport the paper expects from Connect-IB cards (Section 5.5): DC
// provides connected-transport verbs (including RDMA) while the NIC
// keeps only one shared responder context, so it scales like UD.
const (
	RC Transport = iota // Reliable Connection
	UC                  // Unreliable Connection
	UD                  // Unreliable Datagram
	DC                  // Dynamically Connected (Connect-IB)
)

// String returns the conventional abbreviation.
func (t Transport) String() string {
	switch t {
	case RC:
		return "RC"
	case UC:
		return "UC"
	case UD:
		return "UD"
	case DC:
		return "DC"
	}
	return "?"
}

// Header returns the per-packet header bytes for transport t. DC packets
// carry an extra DC access-key header over RC's.
func (p Params) Header(t Transport) int {
	switch t {
	case RC:
		return p.HdrRC
	case UC:
		return p.HdrUC
	case DC:
		return p.HdrRC + 12
	default:
		return p.HdrUD
	}
}

// NodeID identifies a host on the fabric.
type NodeID int

// Fate is the injected outcome of one packet transmission.
type Fate int

const (
	// FateDeliver lets the packet through intact.
	FateDeliver Fate = iota
	// FateDrop silently discards the packet (blackout, partition, or
	// probabilistic degradation — the receiver sees nothing).
	FateDrop
	// FateCorrupt delivers the packet with a damaged payload. Callers
	// that cannot surface corruption (control packets, which hardware
	// CRC-checks and discards) treat it as FateDrop.
	FateCorrupt
)

// FaultHook decides the fate of a packet src->dst sent at virtual time
// now. It runs inside the deterministic event loop, so any randomness it
// uses must come from a seeded source.
type FaultHook func(src, dst NodeID, now sim.Time) Fate

// Delivery describes one arrived packet: when its last byte landed and
// whether an injected fault corrupted it in flight.
type Delivery struct {
	At      sim.Time
	Corrupt bool
}

type port struct {
	egress  *sim.Server
	ingress *sim.Server
}

// Network is the fabric. Each node owns a full-duplex port; a packet
// serializes at the sender's egress, crosses the switch, then serializes
// at the receiver's ingress.
type Network struct {
	eng   *sim.Engine
	p     Params
	ports map[NodeID]*port
	rnd   *sim.Rand
	fault FaultHook

	sent      uint64
	dropped   uint64
	corrupted uint64
}

// NewNetwork returns an empty fabric.
func NewNetwork(eng *sim.Engine, p Params, seed int64) *Network {
	return &Network{eng: eng, p: p, ports: make(map[NodeID]*port), rnd: sim.NewRand(seed)}
}

// Params returns the fabric parameters.
func (n *Network) Params() Params { return n.p }

// SetLossRate adjusts the bit-error drop probability at runtime (for
// failure-injection tests that need deterministic loss windows).
func (n *Network) SetLossRate(r float64) { n.p.LossRate = r }

// SetFaultHook installs (or, with nil, removes) the per-packet fault
// policy. The hook sees every packet before the uniform LossRate roll;
// a FateDrop or FateCorrupt verdict preempts it.
func (n *Network) SetFaultHook(fn FaultHook) { n.fault = fn }

// Engine returns the simulation engine driving the fabric.
func (n *Network) Engine() *sim.Engine { return n.eng }

// fate is the single packet-fate decision point: the injected fault
// hook first, then the uniform bit-error loss rate.
func (n *Network) fate(src, dst NodeID) Fate {
	if n.fault != nil {
		if f := n.fault(src, dst, n.eng.Now()); f != FateDeliver {
			return f
		}
	}
	if n.p.LossRate > 0 && n.rnd.Float64() < n.p.LossRate {
		return FateDrop
	}
	return FateDeliver
}

// AddNode attaches a node to the fabric. Adding an existing node is a
// no-op.
func (n *Network) AddNode(id NodeID) {
	if _, ok := n.ports[id]; ok {
		return
	}
	n.ports[id] = &port{
		egress:  sim.NewServer(n.eng, 1),
		ingress: sim.NewServer(n.eng, 1),
	}
}

func (n *Network) mustPort(id NodeID) *port {
	p, ok := n.ports[id]
	if !ok {
		panic("wire: unknown node")
	}
	return p
}

// SerializationTime returns the time to clock wireBytes onto a link.
func (n *Network) SerializationTime(wireBytes int) sim.Time {
	return sim.Time(float64(wireBytes*8) / (n.p.Gbps * 1e9) * float64(sim.Second))
}

// WireBytes returns payload plus header size for one packet on t.
func (n *Network) WireBytes(t Transport, payload int) int {
	return payload + n.p.Header(t)
}

// Sent reports packets transmitted; Dropped reports injected losses
// (bit errors, blackouts, partitions); Corrupted reports packets
// delivered with a damaged payload.
func (n *Network) Sent() uint64      { return n.sent }
func (n *Network) Dropped() uint64   { return n.dropped }
func (n *Network) Corrupted() uint64 { return n.corrupted }

// Send transmits one packet of payload bytes from src to dst over
// transport t. deliver runs when the packet has fully arrived; it is
// never called if the packet is dropped or corrupted (control-path
// semantics: hardware CRCs catch corruption and discard the packet).
func (n *Network) Send(src, dst NodeID, t Transport, payload int, deliver func(sim.Time)) {
	n.SendData(src, dst, t, payload, dropCorrupt(deliver))
}

// SendData transmits like Send but surfaces corruption: deliver runs
// for intact AND corrupted arrivals, with Delivery.Corrupt distinguishing
// them. Data-path verbs (UC WRITE, UD SEND) use it to land damaged
// payloads the application must reject — the paper's Section 7 point
// that unreliable transports push integrity to the application.
func (n *Network) SendData(src, dst NodeID, t Transport, payload int, deliver func(Delivery)) {
	n.sendSegmented(src, dst, n.WireBytes(t, payload), deliver)
}

// SendWire transmits a packet of an explicit wire size (used for ACKs and
// other control packets). Wire sizes above MTU+header are segmented: each
// segment pays its own header and serialization, and delivery fires when
// the final segment has fully arrived. Corrupted control packets are
// discarded (never delivered).
func (n *Network) SendWire(src, dst NodeID, wireBytes int, deliver func(sim.Time)) {
	n.sendSegmented(src, dst, wireBytes, dropCorrupt(deliver))
}

// dropCorrupt adapts a corruption-blind callback: corrupt arrivals are
// simply discarded.
func dropCorrupt(deliver func(sim.Time)) func(Delivery) {
	return func(d Delivery) {
		if d.Corrupt || deliver == nil {
			return
		}
		deliver(d.At)
	}
}

func (n *Network) sendSegmented(src, dst NodeID, wireBytes int, deliver func(Delivery)) {
	hdr := n.p.HdrUC // segmentation framing approximated by the UC header
	maxPkt := n.p.MTU + hdr
	if n.p.MTU <= 0 || wireBytes <= maxPkt {
		n.sendOne(src, dst, wireBytes, deliver)
		return
	}
	// Split into segments, each with its own header. The message is
	// delivered only when every segment has arrived — a dropped segment
	// (which produces no arrival) suppresses delivery entirely, and a
	// corrupted segment taints the whole message.
	var sizes []int
	rest := wireBytes
	for rest > maxPkt {
		sizes = append(sizes, maxPkt)
		rest = rest - maxPkt + hdr
	}
	sizes = append(sizes, rest)
	arrived := 0
	tainted := false
	for _, sz := range sizes {
		n.sendOne(src, dst, sz, func(d Delivery) {
			arrived++
			tainted = tainted || d.Corrupt
			if arrived == len(sizes) && deliver != nil {
				deliver(Delivery{At: d.At, Corrupt: tainted})
			}
		})
	}
}

func (n *Network) sendOne(src, dst NodeID, wireBytes int, deliver func(Delivery)) {
	sp, dp := n.mustPort(src), n.mustPort(dst)
	n.sent++
	corrupt := false
	switch n.fate(src, dst) {
	case FateDrop:
		n.dropped++
		return
	case FateCorrupt:
		n.corrupted++
		corrupt = true
	}
	ser := n.SerializationTime(wireBytes)
	sp.egress.Submit(ser, func(sim.Time) {
		n.eng.After(n.p.PropDelay, func() {
			dp.ingress.Submit(ser, func(end sim.Time) {
				if deliver != nil {
					deliver(Delivery{At: end, Corrupt: corrupt})
				}
			})
		})
	})
}

// IngressUtilization reports node id's receive-link utilization.
func (n *Network) IngressUtilization(id NodeID) float64 {
	return n.mustPort(id).ingress.Utilization()
}

// EgressUtilization reports node id's transmit-link utilization.
func (n *Network) EgressUtilization(id NodeID) float64 {
	return n.mustPort(id).egress.Utilization()
}
