package wire

import (
	"testing"
	"testing/quick"

	"herdkv/internal/sim"
)

func newNet() (*sim.Engine, *Network) {
	eng := sim.New()
	n := NewNetwork(eng, InfiniBand56(), 1)
	n.AddNode(0)
	n.AddNode(1)
	n.AddNode(2)
	return eng, n
}

func TestTransportStrings(t *testing.T) {
	if RC.String() != "RC" || UC.String() != "UC" || UD.String() != "UD" {
		t.Fatal("transport names wrong")
	}
	if Transport(9).String() != "?" {
		t.Fatal("unknown transport should stringify to ?")
	}
}

func TestUDHeaderLarger(t *testing.T) {
	for _, p := range []Params{InfiniBand56(), RoCE40()} {
		if p.Header(UD) <= p.Header(UC) {
			t.Fatal("UD header must exceed UC header")
		}
		if p.Header(RC) != p.HdrRC {
			t.Fatal("RC header mismatch")
		}
	}
}

func TestSerializationTime(t *testing.T) {
	_, n := newNet()
	// 56 Gbps: 56 bits/ns => 7 bytes/ns. 700 bytes => 100 ns.
	got := n.SerializationTime(700)
	if got != 100*sim.Nanosecond {
		t.Fatalf("700 B at 56 Gbps = %v, want 100ns", got)
	}
}

func TestDeliveryLatency(t *testing.T) {
	eng, n := newNet()
	var at sim.Time = -1
	n.Send(0, 1, UC, 64, func(end sim.Time) { at = end })
	eng.Run()
	wire := 64 + InfiniBand56().HdrUC
	want := 2*n.SerializationTime(wire) + InfiniBand56().PropDelay
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestIngressContention(t *testing.T) {
	// Two senders to the same receiver must serialize on its ingress.
	eng, n := newNet()
	var times []sim.Time
	n.Send(0, 2, UC, 1024, func(end sim.Time) { times = append(times, end) })
	n.Send(1, 2, UC, 1024, func(end sim.Time) { times = append(times, end) })
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(times))
	}
	ser := n.SerializationTime(1024 + InfiniBand56().HdrUC)
	if gap := times[1] - times[0]; gap != ser {
		t.Fatalf("ingress gap = %v, want one serialization time %v", gap, ser)
	}
}

func TestEgressIndependentPerNode(t *testing.T) {
	// Different senders do not share egress capacity.
	eng, n := newNet()
	var a, b sim.Time
	n.Send(0, 2, UC, 64, func(end sim.Time) { a = end })
	n.Send(1, 2, UC, 64, func(end sim.Time) { b = end })
	eng.Run()
	ser := n.SerializationTime(64 + InfiniBand56().HdrUC)
	// Both start egress at t=0; the second is delayed only at ingress.
	if a != 2*ser+InfiniBand56().PropDelay {
		t.Fatalf("first delivery %v", a)
	}
	if b != 3*ser+InfiniBand56().PropDelay {
		t.Fatalf("second delivery %v", b)
	}
}

func TestLinkBandwidthBound(t *testing.T) {
	// Saturating one ingress with 128 B+hdr packets: 56 Gbps / (164 B*8)
	// = ~42.7 Mops ceiling.
	eng, n := newNet()
	count := 0
	k := 10000
	for i := 0; i < k; i++ {
		n.Send(0, 1, UC, 128, func(sim.Time) { count++ })
	}
	eng.Run()
	mops := float64(count) / eng.Now().Seconds() / 1e6
	want := 56e9 / 8 / float64(128+36) / 1e6
	if mops < want*0.95 || mops > want*1.05 {
		t.Fatalf("ingress-bound rate %.1f Mops, want ~%.1f", mops, want)
	}
}

func TestLossInjection(t *testing.T) {
	eng := sim.New()
	p := InfiniBand56()
	p.LossRate = 0.5
	n := NewNetwork(eng, p, 42)
	n.AddNode(0)
	n.AddNode(1)
	delivered := 0
	total := 2000
	for i := 0; i < total; i++ {
		n.Send(0, 1, UD, 32, func(sim.Time) { delivered++ })
	}
	eng.Run()
	if n.Sent() != uint64(total) {
		t.Fatalf("sent = %d, want %d", n.Sent(), total)
	}
	if n.Dropped() == 0 || delivered == 0 {
		t.Fatal("expected both drops and deliveries at 50% loss")
	}
	if int(n.Dropped())+delivered != total {
		t.Fatalf("drops (%d) + deliveries (%d) != total (%d)", n.Dropped(), delivered, total)
	}
	frac := float64(n.Dropped()) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("drop fraction %.2f, want ~0.5", frac)
	}
}

func TestZeroLossByDefault(t *testing.T) {
	eng, n := newNet()
	delivered := 0
	for i := 0; i < 1000; i++ {
		n.Send(0, 1, UC, 32, func(sim.Time) { delivered++ })
	}
	eng.Run()
	if delivered != 1000 || n.Dropped() != 0 {
		t.Fatalf("delivered=%d dropped=%d, want 1000/0 (lossless fabric)", delivered, n.Dropped())
	}
}

func TestUnknownNodePanics(t *testing.T) {
	_, n := newNet()
	defer func() {
		if recover() == nil {
			t.Fatal("send to unknown node did not panic")
		}
	}()
	n.Send(0, 99, UC, 1, nil)
}

func TestAddNodeIdempotent(t *testing.T) {
	eng, n := newNet()
	n.Send(0, 1, UC, 512, nil)
	n.AddNode(1) // must not reset port state
	var at sim.Time
	n.Send(0, 1, UC, 512, func(end sim.Time) { at = end })
	eng.Run()
	ser := n.SerializationTime(512 + 36)
	if at != 3*ser+InfiniBand56().PropDelay {
		t.Fatalf("second packet at %v; AddNode reset the port?", at)
	}
}

// Property: delivery time grows monotonically with payload size.
func TestDeliveryMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a%4096), int(b%4096)
		if x > y {
			x, y = y, x
		}
		eng := sim.New()
		n := NewNetwork(eng, InfiniBand56(), 1)
		n.AddNode(0)
		n.AddNode(1)
		var tx, ty sim.Time
		n.Send(0, 1, UC, x, func(end sim.Time) { tx = end })
		eng.Run()
		eng2 := sim.New()
		n2 := NewNetwork(eng2, InfiniBand56(), 1)
		n2.AddNode(0)
		n2.AddNode(1)
		n2.Send(0, 1, UC, y, func(end sim.Time) { ty = end })
		eng2.Run()
		return tx <= ty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
