package workload

import (
	"bytes"
	"testing"
)

// FuzzReadTrace hardens the trace loader against corrupt or adversarial
// files: it must never panic or over-allocate, and anything it accepts
// must survive a write/read round trip.
func FuzzReadTrace(f *testing.F) {
	var valid bytes.Buffer
	Record(NewGenerator(ReadIntensive(100, 32, 1)), 5).WriteTo(&valid)
	f.Add(valid.Bytes())
	f.Add([]byte("hkv1"))
	f.Add([]byte{})
	f.Add([]byte("hkv1\xff\xff\xff\xff\xff\xff\xff\x7f"))
	// Regression: a header declaring ~10^9 ops with almost no body once
	// pre-allocated tens of GB before the length check could fail.
	f.Add([]byte("hkv1\x00\x00\x01\x3a\x00\x00\x00\x00\x00\x00\x00\x01\x10\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := tr.WriteTo(&out); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		again, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again.Ops) != len(tr.Ops) {
			t.Fatalf("round trip changed op count")
		}
	})
}
