package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"herdkv/internal/kv"
)

// The paper generates its workloads offline with YCSB ("We generated 480
// million keys once and assigned 8 million keys to each of the 51 client
// processes") and replays them. Trace provides the same methodology:
// record a generator's op stream to a compact binary form once, then
// replay it any number of times — including sliced per client.

// traceMagic identifies the trace format.
var traceMagic = [4]byte{'h', 'k', 'v', '1'}

// Trace is a recorded op sequence.
type Trace struct {
	Ops []Op
}

// Record draws n ops from gen into a trace.
func Record(gen *Generator, n int) *Trace {
	t := &Trace{Ops: make([]Op, n)}
	for i := range t.Ops {
		t.Ops[i] = gen.Next()
	}
	return t
}

// Slice returns client i's share when the trace is split evenly among
// nClients (the paper's per-client key assignment).
func (t *Trace) Slice(i, nClients int) []Op {
	if nClients <= 0 {
		return nil
	}
	per := len(t.Ops) / nClients
	lo := i * per
	hi := lo + per
	if i == nClients-1 {
		hi = len(t.Ops)
	}
	if lo > len(t.Ops) {
		return nil
	}
	return t.Ops[lo:hi]
}

// Each op serializes to 1 flag byte + 8-byte rank; keys are rebuilt from
// ranks on load (keys are a pure function of rank).
const opRecordBytes = 9

// WriteTo serializes the trace. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	wrote, err := bw.Write(traceMagic[:])
	n += int64(wrote)
	if err != nil {
		return n, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(t.Ops)))
	wrote, err = bw.Write(hdr[:])
	n += int64(wrote)
	if err != nil {
		return n, err
	}
	var rec [opRecordBytes]byte
	for _, op := range t.Ops {
		rec[0] = 0
		if op.IsGet {
			rec[0] = 1
		}
		binary.LittleEndian.PutUint64(rec[1:], op.Rank)
		wrote, err = bw.Write(rec[:])
		n += int64(wrote)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace magic: %w", err)
	}
	if magic != traceMagic {
		return nil, errors.New("workload: not a trace file")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	const maxOps = 1 << 30
	if count > maxOps {
		return nil, fmt.Errorf("workload: trace declares %d ops (limit %d)", count, maxOps)
	}
	// Allocate incrementally: a corrupt header can declare an op count
	// far beyond the actual data, and pre-allocating by the header alone
	// would let a 20-byte file demand gigabytes.
	prealloc := count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	t := &Trace{Ops: make([]Op, 0, prealloc)}
	var rec [opRecordBytes]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("workload: reading op %d: %w", i, err)
		}
		rank := binary.LittleEndian.Uint64(rec[1:])
		t.Ops = append(t.Ops, Op{
			IsGet: rec[0] == 1,
			Rank:  rank,
			Key:   kv.FromUint64(rank),
		})
	}
	return t, nil
}

// Replayer iterates a recorded op slice, wrapping at the end so drivers
// can run longer than the recording.
type Replayer struct {
	ops []Op
	pos int
}

// NewReplayer returns a replayer over ops.
func NewReplayer(ops []Op) *Replayer { return &Replayer{ops: ops} }

// Next returns the next op, wrapping around.
func (r *Replayer) Next() Op {
	if len(r.ops) == 0 {
		return Op{Key: kv.FromUint64(0)}
	}
	op := r.ops[r.pos]
	r.pos = (r.pos + 1) % len(r.ops)
	return op
}

// Len returns the underlying recording length.
func (r *Replayer) Len() int { return len(r.ops) }
