package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"herdkv/internal/kv"
)

func TestTraceRoundTrip(t *testing.T) {
	gen := NewGenerator(Skewed(1000, 32, 5))
	tr := Record(gen, 500)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != 500 {
		t.Fatalf("ops = %d", len(got.Ops))
	}
	for i := range tr.Ops {
		if tr.Ops[i] != got.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, tr.Ops[i], got.Ops[i])
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated body.
	gen := NewGenerator(ReadIntensive(100, 32, 1))
	var buf bytes.Buffer
	Record(gen, 10).WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestTraceRejectsHugeCount(t *testing.T) {
	raw := append([]byte{'h', 'k', 'v', '1'}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Fatal("absurd op count accepted")
	}
}

func TestTraceSlice(t *testing.T) {
	gen := NewGenerator(ReadIntensive(100, 32, 2))
	tr := Record(gen, 103)
	total := 0
	seen := map[int]bool{}
	for c := 0; c < 10; c++ {
		s := tr.Slice(c, 10)
		total += len(s)
		for range s {
			seen[total] = true
		}
	}
	if total != 103 {
		t.Fatalf("slices cover %d ops, want 103", total)
	}
	// Last client gets the remainder.
	if got := len(tr.Slice(9, 10)); got != 13 {
		t.Fatalf("last slice = %d, want 13", got)
	}
	if tr.Slice(0, 0) != nil {
		t.Fatal("zero clients should return nil")
	}
}

func TestReplayerWraps(t *testing.T) {
	gen := NewGenerator(ReadIntensive(100, 32, 3))
	tr := Record(gen, 7)
	r := NewReplayer(tr.Ops)
	for i := 0; i < 21; i++ {
		if r.Next() != tr.Ops[i%7] {
			t.Fatalf("replay mismatch at %d", i)
		}
	}
	empty := NewReplayer(nil)
	if empty.Len() != 0 {
		t.Fatal("empty replayer length")
	}
	_ = empty.Next() // must not panic
}

// Property: serialization is lossless for arbitrary op streams.
func TestTraceSerializationProperty(t *testing.T) {
	f := func(ranks []uint64, flags []bool) bool {
		n := len(ranks)
		if len(flags) < n {
			n = len(flags)
		}
		tr := &Trace{}
		for i := 0; i < n; i++ {
			tr.Ops = append(tr.Ops, Op{IsGet: flags[i], Rank: ranks[i], Key: kv.FromUint64(ranks[i])})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(got.Ops) != len(tr.Ops) {
			return false
		}
		for i := range tr.Ops {
			if got.Ops[i] != tr.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
