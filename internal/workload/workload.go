// Package workload generates the paper's request mixes (Section 5.2):
// read-intensive (95% GET) and write-intensive (50% GET) workloads over
// uniform or Zipf(0.99)-distributed 16-byte keyhashes, with configurable
// value sizes. Generation is deterministic under a seed, mirroring the
// paper's offline YCSB-generated traces.
package workload

import (
	"math"

	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

// Op is one client request.
type Op struct {
	IsGet bool
	Key   kv.Key
	// Rank is the key's popularity rank (0 = most popular under Zipf);
	// exposed for skew analyses.
	Rank uint64
}

// Config describes a workload.
type Config struct {
	// GetFraction is the GET share: 0.95 (read-intensive), 0.50
	// (write-intensive) or 0.0 (100% PUT) in the paper.
	GetFraction float64
	// Keys is the keyspace size.
	Keys uint64
	// ZipfTheta > 0 draws ranks from a Zipf distribution with this
	// parameter (the paper uses 0.99); 0 means uniform.
	ZipfTheta float64
	// ValueSize is the PUT value size (SV); the paper's default item is
	// 48 B: SK=16, SV=32.
	ValueSize int
	// Seed makes the stream reproducible.
	Seed int64
}

// ReadIntensive returns the paper's 95% GET workload over uniform keys.
func ReadIntensive(keys uint64, valueSize int, seed int64) Config {
	return Config{GetFraction: 0.95, Keys: keys, ValueSize: valueSize, Seed: seed}
}

// WriteIntensive returns the paper's 50% GET workload.
func WriteIntensive(keys uint64, valueSize int, seed int64) Config {
	return Config{GetFraction: 0.50, Keys: keys, ValueSize: valueSize, Seed: seed}
}

// Skewed returns the paper's Zipf(.99) read-intensive workload.
func Skewed(keys uint64, valueSize int, seed int64) Config {
	return Config{GetFraction: 0.95, Keys: keys, ZipfTheta: 0.99, ValueSize: valueSize, Seed: seed}
}

// Generator produces a deterministic op stream.
type Generator struct {
	cfg  Config
	rnd  *sim.Rand
	zipf *Zipf
	val  []byte
}

// NewGenerator returns a generator for cfg.
func NewGenerator(cfg Config) *Generator {
	if cfg.Keys == 0 {
		cfg.Keys = 1
	}
	g := &Generator{cfg: cfg, rnd: sim.NewRand(cfg.Seed)}
	if cfg.ZipfTheta > 0 {
		g.zipf = NewZipf(cfg.Keys, cfg.ZipfTheta, g.rnd)
	}
	g.val = make([]byte, cfg.ValueSize)
	return g
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Next returns the next op.
func (g *Generator) Next() Op {
	var rank uint64
	if g.zipf != nil {
		rank = g.zipf.Next()
	} else {
		rank = uint64(g.rnd.Int63n(int64(g.cfg.Keys)))
	}
	return Op{
		IsGet: g.rnd.Float64() < g.cfg.GetFraction,
		// Hashing the rank scrambles popularity across the keyhash
		// space, so hot keys land on random partitions (Section 5.7).
		Key:  kv.FromUint64(rank),
		Rank: rank,
	}
}

// Value returns a deterministic value of the configured size for key:
// the first bytes identify the key so reads can be verified end-to-end.
func (g *Generator) Value(key kv.Key) []byte {
	for i := range g.val {
		g.val[i] = key[i%kv.KeySize] ^ byte(i)
	}
	return g.val
}

// ExpectedValue reports what Value would produce for key with size n —
// for verification on the read side.
func ExpectedValue(key kv.Key, n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = key[i%kv.KeySize] ^ byte(i)
	}
	return v
}

// Zipf draws ranks 0..n-1 from a Zipf distribution with parameter theta
// in (0, 1), using the Gray et al. rejection-free method YCSB uses
// (math/rand's Zipf requires s > 1, which excludes the paper's 0.99).
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rnd   *sim.Rand
}

// NewZipf prepares a sampler over [0, n).
func NewZipf(n uint64, theta float64, rnd *sim.Rand) *Zipf {
	if n == 0 {
		n = 1
	}
	z := &Zipf{n: n, theta: theta, rnd: rnd}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

// zeta computes the generalized harmonic number H(n, theta).
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next rank; 0 is the most popular.
func (z *Zipf) Next() uint64 {
	u := z.rnd.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}
