package workload

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

func TestGetFraction(t *testing.T) {
	for _, frac := range []float64{0.95, 0.50, 0.0} {
		g := NewGenerator(Config{GetFraction: frac, Keys: 1000, ValueSize: 32, Seed: 1})
		gets := 0
		n := 20000
		for i := 0; i < n; i++ {
			if g.Next().IsGet {
				gets++
			}
		}
		got := float64(gets) / float64(n)
		if got < frac-0.02 || got > frac+0.02 {
			t.Fatalf("GET fraction = %.3f, want %.2f", got, frac)
		}
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	a := NewGenerator(ReadIntensive(1000, 32, 7))
	b := NewGenerator(ReadIntensive(1000, 32, 7))
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed, different streams")
		}
	}
}

func TestUniformCoverage(t *testing.T) {
	g := NewGenerator(Config{GetFraction: 1, Keys: 64, Seed: 1})
	counts := make(map[uint64]int)
	n := 64000
	for i := 0; i < n; i++ {
		counts[g.Next().Rank]++
	}
	for r := uint64(0); r < 64; r++ {
		c := counts[r]
		if c < n/64*7/10 || c > n/64*13/10 {
			t.Fatalf("rank %d drawn %d times, want ~%d", r, c, n/64)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Zipf(.99): the most popular key must dominate; the paper notes the
	// hottest key is ~1e5 times more popular than the average over 480M
	// keys. At 100k keys the ratio is smaller but still large.
	rnd := sim.NewRand(1)
	z := NewZipf(100000, 0.99, rnd)
	counts := make(map[uint64]int)
	n := 500000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	avg := float64(n) / 100000
	hottest := float64(counts[0])
	if hottest/avg < 1000 {
		t.Fatalf("hottest/avg = %.0f, want >1000 under Zipf(.99)", hottest/avg)
	}
}

func TestZipfRankMonotonicity(t *testing.T) {
	// Popularity must be non-increasing in rank (allowing noise): check
	// decile mass ordering.
	rnd := sim.NewRand(2)
	z := NewZipf(1000, 0.99, rnd)
	counts := make([]int, 1000)
	for i := 0; i < 300000; i++ {
		counts[z.Next()]++
	}
	decile := func(d int) int {
		s := 0
		for i := d * 100; i < (d+1)*100; i++ {
			s += counts[i]
		}
		return s
	}
	last := decile(0)
	for d := 1; d < 10; d++ {
		cur := decile(d)
		if cur > last {
			t.Fatalf("decile %d mass %d exceeds decile %d mass %d", d, cur, d-1, last)
		}
		last = cur
	}
}

func TestZipfRangeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := uint64(nRaw%1000) + 2
		rnd := sim.NewRand(seed)
		z := NewZipf(n, 0.99, rnd)
		for i := 0; i < 200; i++ {
			if z.Next() >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestValueVerifiable(t *testing.T) {
	g := NewGenerator(ReadIntensive(100, 48, 1))
	k := kv.FromUint64(5)
	v := g.Value(k)
	if len(v) != 48 {
		t.Fatalf("value size = %d", len(v))
	}
	if !bytes.Equal(v, ExpectedValue(k, 48)) {
		t.Fatal("Value and ExpectedValue disagree")
	}
	k2 := kv.FromUint64(6)
	if bytes.Equal(ExpectedValue(k, 48), ExpectedValue(k2, 48)) {
		t.Fatal("different keys produced identical values")
	}
}

func TestSkewedPresetSpreadsHotKeysAcrossPartitions(t *testing.T) {
	// Section 5.7: hashing ranks scrambles hot keys across partitions, so
	// partition load imbalance is much milder than key popularity skew.
	g := NewGenerator(Skewed(1<<20, 32, 3))
	loads := make([]int, 6)
	n := 120000
	for i := 0; i < n; i++ {
		op := g.Next()
		p := int(op.Key.Hash64(0xeee) % 6)
		loads[p]++
	}
	sort.Ints(loads)
	ratio := float64(loads[5]) / float64(loads[0])
	if ratio > 2.0 {
		t.Fatalf("partition imbalance %.2fx too high; hot keys not scrambled", ratio)
	}
}

func TestKeysNeverZero(t *testing.T) {
	g := NewGenerator(Skewed(1000, 32, 4))
	for i := 0; i < 10000; i++ {
		if g.Next().Key.IsZero() {
			t.Fatal("generated the reserved zero keyhash")
		}
	}
}
